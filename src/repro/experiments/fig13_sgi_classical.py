"""Fig. 13 -- Classical speedup vs the filtering-optimized serial Jasper.

The paper: "When taking the filtering optimized code as the reference for
our speedup measurements, we can observe a total speedup of little more
than 2 ... the maximum theoretical speedup would be around 2.4" -- once
the cache fix shrinks the parallel share, Amdahl's law caps the classical
speedup.
"""

from __future__ import annotations

from ..core.amdahl import theoretical_speedup_from_breakdown
from ..core.speedup import SpeedupSeries
from ..perf.costmodel import simulate_encode
from ..smp.machine import SGI_POWER_CHALLENGE
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig13_sgi_classical",
        description="Classical speedup vs optimized serial code saturates a little above 2 (Amdahl)",
        paper="Slightly above 2 measured; theoretical ceiling ~2.4 (4-CPU equivalent)",
    )
    kpix = 1024 if quick else 16384
    cpus = (1, 4) if quick else (1, 2, 4, 6, 8, 10, 12, 16)
    wl = standard_workload(kpix, quick)
    params = jasper_params()
    opt_serial = simulate_encode(
        wl, SGI_POWER_CHALLENGE, 1, VerticalStrategy.AGGREGATED, params=params,
        parallel_quant=True,
    )
    series = SpeedupSeries(
        "OpenMP + modified filtering",
        "filtering-optimized serial Jasper",
        opt_serial.total_ms,
        tuple(cpus),
        tuple(
            simulate_encode(
                wl, SGI_POWER_CHALLENGE, n, VerticalStrategy.AGGREGATED,
                params=params, parallel_quant=True,
            ).total_ms
            for n in cpus
        ),
    )
    bound4 = theoretical_speedup_from_breakdown(opt_serial, 4)
    for i, n in enumerate(cpus):
        result.rows.append({"cpus": n, "classical_x": series.speedups[i]})
    result.rows.append({"cpus": "theory(4)", "classical_x": bound4})

    last = cpus[-1]
    result.check(
        f"classical speedup at {last} CPUs in 1.8..4.5 (paper: little more than 2)",
        1.8 <= series.at(last) <= 4.5,
    )
    if len(cpus) >= 3:
        result.check("speedup saturates", series.saturates(tolerance=0.2))
    result.check(
        "4-CPU Amdahl ceiling in 1.8..3.2 (paper ~2.4)", 1.8 <= bound4 <= 3.2
    )
    result.check(
        "measured at 4 CPUs below its Amdahl ceiling", series.at(4) <= bound4 + 1e-9
    )
    return result
