"""Fig. 3 -- Serial runtime analysis of JJ2000 and Jasper (Intel SMP).

The paper's stacked bars show, per image size: the intra-component
(wavelet) transform as "clearly the most demanding part of the
algorithm, followed by the encoding stage (tier-1 coding)", with the
intrinsically sequential parts (image/bitstream I/O, R/D allocation) at
"relatively low complexity".
"""

from __future__ import annotations

from ..perf.costmodel import simulate_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, jj2000_params, standard_workload

__all__ = ["run"]

#: Reference magnitudes read off the paper's Fig. 3 at 16384 Kpixel
#: (JJ2000, milliseconds) -- used for documentation, not for tuning.
PAPER_16384K = {
    "intra-component transform": 44218.0,
    "tier-1 coding": 32420.0,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig03_serial",
        description="Serial stage breakdown: DWT dominant, tier-1 second, sequential stages small",
        paper=(
            "At 16384 Kpixel (JJ2000): intra-component ~44 s, tier-1 ~32 s, "
            "each sequential stage a few seconds; same shape for Jasper at ~80%"
        ),
    )
    sizes = (256, 1024) if quick else (256, 1024, 4096, 16384)
    for codec, params in (("JJ2000", jj2000_params()), ("Jasper", jasper_params())):
        for kpix in sizes:
            wl = standard_workload(kpix, quick)
            bd = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=params)
            stages = bd.figure3_stages()
            row = {"codec": codec, "size": f"{kpix}K"}
            row.update({k: v for k, v in stages.items()})
            result.rows.append(row)
            dwt = stages["intra-component transform"]
            t1 = stages["tier-1 coding"]
            seq = bd.sequential_ms()
            biggest = max(stages.values())
            # The cache pathology grows with image size (Sec. 3.3: "this
            # cache problem increases with the dimensions of the image"),
            # so DWT strictly dominates at the large sizes and is at least
            # near-dominant at the small ones.
            if kpix >= 4096:
                result.check(f"{codec} {kpix}K: DWT is the largest stage", dwt == biggest)
            else:
                result.check(
                    f"{codec} {kpix}K: DWT within 15% of the largest stage",
                    dwt >= 0.85 * biggest,
                )
            result.check(
                f"{codec} {kpix}K: DWT and tier-1 are the two largest stages",
                {dwt, t1} == set(sorted(stages.values())[-2:]),
            )
            result.check(f"{codec} {kpix}K: sequential stages < 35% of total", seq < 0.35 * bd.total_ms)
    if not quick:
        wl = standard_workload(16384)
        bd = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=jj2000_params())
        stages = bd.figure3_stages()
        for stage, paper_ms in PAPER_16384K.items():
            ours = stages[stage]
            result.check(
                f"16384K {stage}: within 2.5x of paper ({paper_ms:.0f} ms vs {ours:.0f} ms)",
                paper_ms / 2.5 <= ours <= paper_ms * 2.5,
            )
    return result
