"""Extension -- SMP versus multicomputer, quantified.

Section 3 of the paper motivates the shared-memory architecture over
multicomputers "due to the high memory requirements of these
applications" and the comfortable programming environments.  This
extension costs the same parallel decomposition on message-passing
clusters (Fast Ethernet and Myrinet interconnects, 2002-era numbers) and
compares against the simulated Intel SMP: the explicit scatter / halo
exchange / repartition / gather traffic that shared memory makes
implicit is what separates the two.
"""

from __future__ import annotations

from ..perf.costmodel import simulate_encode
from ..smp.distributed import FAST_ETHERNET, MYRINET_2000, simulate_cluster_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jj2000_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_message_passing",
        description="Extension: the same parallelization on message-passing clusters",
        paper=(
            "Not measured in the paper; its Sec. 3 claim: SMPs are the "
            "interesting alternative to multicomputers for image coding"
        ),
    )
    kpix = 1024 if quick else 16384
    wl = standard_workload(kpix, quick)
    params = jj2000_params()

    smp4 = simulate_encode(
        wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED, params=params, parallel_quant=True
    )
    serial = simulate_encode(
        wl, INTEL_SMP, 1, VerticalStrategy.AGGREGATED, params=params, parallel_quant=True
    )

    rows = {}
    for net in (FAST_ETHERNET, MYRINET_2000):
        for nodes in (4, 16):
            cb = simulate_cluster_encode(wl, INTEL_SMP, net, nodes, params)
            rows[(net.name, nodes)] = cb
            result.rows.append(
                {
                    "config": f"{net.name} x{nodes}",
                    "total_ms": cb.total_ms,
                    "compute_ms": cb.compute_ms,
                    "comm_ms": cb.comm_ms,
                    "comm_share": cb.comm_ms / cb.total_ms,
                }
            )
    result.rows.append(
        {"config": "SMP x4 (shared memory)", "total_ms": smp4.total_ms,
         "compute_ms": smp4.total_ms - smp4.sequential_ms(),
         "comm_ms": 0.0, "comm_share": 0.0}
    )

    eth4 = rows[("fast_ethernet", 4)]
    myr4 = rows[("myrinet_2000", 4)]
    if not quick:
        # The margin is scale-dependent: at the paper's 16-Mpixel size
        # the Ethernet cluster's explicit traffic costs it the lead; at
        # small sizes the SMP's thread/pool overheads dominate instead,
        # so this ordering claim is asserted at full scale only.
        result.check(
            "4-node Fast-Ethernet cluster not faster than the 4-CPU SMP (full scale)",
            eth4.total_ms > smp4.total_ms * 0.98,
        )
    result.check(
        "a fast interconnect closes most of the gap",
        myr4.total_ms < eth4.total_ms,
    )
    result.check(
        "cluster communication is a real share on Ethernet (> 5%)",
        eth4.comm_ms / eth4.total_ms > 0.05,
    )
    result.check(
        "both clusters still beat one CPU at this image size",
        max(eth4.total_ms, myr4.total_ms) < serial.total_ms,
    )
    eth16 = rows[("fast_ethernet", 16)]
    result.check(
        "Ethernet scaling saturates: 16 nodes < 2.5x faster than 4",
        eth4.total_ms / eth16.total_ms < 2.5,
    )
    return result
