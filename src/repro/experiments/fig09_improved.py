"""Fig. 9 -- JJ2000 with improved filtering on the 4-CPU Intel SMP.

The paper: "We notice an overall speedup of ~3.1 with respect to the
original JJ2000 implementation (see Fig. 3).  Of course, the
superlinearity is due to the improved filtering routine.  A further
significant increase of parallel efficiency can not be expected, since
the intrinsically sequential stages contribute already about 40% to the
overall execution time."
"""

from __future__ import annotations

from ..perf.costmodel import simulate_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jj2000_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig09_improved",
        description="4-CPU improved filtering: ~3.1x vs original serial; sequential stages ~40% of remainder",
        paper="Overall ~3.1x vs original serial JJ2000; sequential ~40% of the parallel runtime",
    )
    sizes = (1024, 4096) if quick else (256, 1024, 4096, 16384)
    params = jj2000_params()
    for kpix in sizes:
        wl = standard_workload(kpix, quick)
        orig = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=params)
        improved = simulate_encode(
            wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED, params=params
        )
        speedup = orig.total_ms / improved.total_ms
        seq_frac = improved.sequential_ms() / improved.total_ms
        row = {"size": f"{kpix}K", "orig_serial_ms": orig.total_ms,
               "improved_4cpu_ms": improved.total_ms, "speedup_x": speedup,
               "seq_fraction": seq_frac}
        row.update(
            {k: v for k, v in improved.figure3_stages().items() if k in
             ("intra-component transform", "tier-1 coding")}
        )
        result.rows.append(row)
        lo = 1.2 if kpix <= 256 else (1.8 if kpix < 4096 else 2.4)  # small images: milder cache pathology, bigger overheads
        result.check(f"{kpix}K: speedup vs original in {lo}..4.3 (paper 3.1)", lo <= speedup <= 4.3)
        naive4 = simulate_encode(wl, INTEL_SMP, 4, VerticalStrategy.NAIVE, params=params)
        result.check(
            f"{kpix}K: improved beats naive parallelization",
            improved.total_ms < naive4.total_ms,
        )
    # Sequential share at the paper's headline size.
    big = sizes[-1]
    wl = standard_workload(big, quick)
    improved = simulate_encode(wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED, params=params)
    frac = improved.sequential_ms() / improved.total_ms
    result.check(f"{big}K: sequential fraction in 0.25..0.55 (paper ~0.4)", 0.25 <= frac <= 0.55)
    return result
