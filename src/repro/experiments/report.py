"""EXPERIMENTS.md generator: run every figure experiment, record
paper-vs-measured.

Usage::

    python -m repro.experiments.report [--quick] [-o EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
import time

from . import all_experiments

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for every figure of *Parallel JPEG2000 Image Coding
on Multiprocessors* (Meerwald, Norcen, Uhl; IPPS 2002).  Regenerate with
`python -m repro.experiments.report -o EXPERIMENTS.md` (about 3 minutes)
or per-figure via `pytest benchmarks/ --benchmark-only -s`.

Conventions: quality experiments (Figs. 4, 5) run through the *real*
codec on synthetic natural-statistics images; performance experiments
(Figs. 2, 3, 6-13) report simulated milliseconds on the modelled 2002
machines, driven by measured codec work statistics (DESIGN.md documents
the substitutions).  Absolute numbers are calibrated once against the
serial profile of Fig. 3; the pass/fail checks below assert the paper's
*qualitative* claims — orderings, saturations, crossovers — which is the
reproduction target.

"""


def generate(quick: bool = False, stream=None) -> str:
    out = [_HEADER]
    mods = all_experiments()
    for name in sorted(mods):
        t0 = time.time()
        result = mods[name].run(quick=quick)
        elapsed = time.time() - t0
        status = "PASS" if result.all_passed else "FAIL"
        if stream:
            print(f"{name}: {status} ({elapsed:.1f}s)", file=stream, flush=True)
        out.append(f"## {result.name} — {status}\n")
        out.append(f"{result.description}\n")
        out.append(f"**Paper:** {result.paper}\n")
        out.append("**Checks:**\n")
        for label, ok in result.checks:
            out.append(f"- [{'x' if ok else ' '}] {label}")
        out.append("\n**Measured:**\n")
        out.append("```")
        out.append(result.table())
        out.append("```")
        if result.notes:
            out.append(f"\n*Notes:* {result.notes}")
        out.append("")
    return "\n".join(out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="reduced-scale run")
    ap.add_argument("-o", "--output", default="EXPERIMENTS.md")
    args = ap.parse_args(argv)
    text = generate(quick=args.quick, stream=sys.stderr)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
