"""One experiment module per figure of the paper's evaluation.

Every module exposes ``run(quick=False) -> ExperimentResult``:

=====================  =====================================================
``fig02_timings``      Compression timings of JPEG / SPIHT / JPEG2000
``fig03_serial``       Serial per-stage runtime analysis (Intel)
``fig04_artifacts``    JPEG vs JPEG2000 vs tiled JPEG2000 at 0.125 bpp
``fig05_tiling``       PSNR vs bitrate under tile-based parallelization
``fig06_parallel``     4-CPU parallel breakdown, naive filtering (Intel)
``fig07_filtering``    Original vs improved filtering times (Intel)
``fig08_filter_speedup``  Speedup of the filtering routines (Intel)
``fig09_improved``     4-CPU breakdown with improved filtering (Intel)
``fig10_sgi_filtering``   Filtering times on the SGI, 1..16 CPUs
``fig11_sgi_filter_speedup``  Vertical-filter speedup vs original (SGI)
``fig12_sgi_total``    Whole-coder speedup vs original Jasper (SGI)
``fig13_sgi_classical``   Classical speedup vs optimized serial (SGI)
``sec33_quant``        Quantization-stage parallel speedup
``sec34_amdahl``       Theoretical (Amdahl) vs measured speedups
``ext_backends``       Extension: serial/threads/processes execution backends
``ext_decoder``        Extension: the techniques applied to decoding
``ext_faulttolerance``  Extension: supervised recovery from compute faults
``ext_message_passing``  Extension: SMP vs message-passing clusters
``ext_observability``  Extension: tracing, worker timelines, Amdahl accounting
``ext_resilience``     Extension: resilient decoding under injected faults
=====================  =====================================================

``quick=True`` shrinks image sizes/CPU grids for fast benchmark runs; the
qualitative checks are identical.  ``repro.experiments.report`` renders
the EXPERIMENTS.md paper-vs-measured tables.
"""

from .common import ExperimentResult, standard_stats, standard_workload, PAPER_SIZES

__all__ = [
    "ExperimentResult",
    "standard_stats",
    "standard_workload",
    "PAPER_SIZES",
    "all_experiments",
]


def all_experiments():
    """Import and return every experiment module, keyed by name."""
    from . import (
        ext_backends,
        ext_decoder,
        ext_faulttolerance,
        ext_message_passing,
        ext_observability,
        ext_resilience,
        fig02_timings,
        fig03_serial,
        fig04_artifacts,
        fig05_tiling,
        fig06_parallel,
        fig07_filtering,
        fig08_filter_speedup,
        fig09_improved,
        fig10_sgi_filtering,
        fig11_sgi_filter_speedup,
        fig12_sgi_total,
        fig13_sgi_classical,
        sec33_quant,
        sec34_amdahl,
    )

    mods = [
        fig02_timings,
        fig03_serial,
        fig04_artifacts,
        fig05_tiling,
        fig06_parallel,
        fig07_filtering,
        fig08_filter_speedup,
        fig09_improved,
        fig10_sgi_filtering,
        fig11_sgi_filter_speedup,
        fig12_sgi_total,
        fig13_sgi_classical,
        sec33_quant,
        sec34_amdahl,
        ext_backends,
        ext_decoder,
        ext_faulttolerance,
        ext_message_passing,
        ext_observability,
        ext_resilience,
    ]
    return {m.__name__.rsplit(".", 1)[-1]: m for m in mods}
