"""Fig. 10 -- Jasper filtering times on the SGI Power Challenge.

16384 Kpixel image, 1..16 CPUs: "We clearly see the big gap between
horizontal and vertical filtering.  Applying the described improved
vertical filtering, we close this gap significantly."  The SGI's slow
194 MHz processors make the absolute times far larger than the Intel's.
"""

from __future__ import annotations

from ..core.study import filtering_profile
from ..smp.machine import INTEL_SMP, SGI_POWER_CHALLENGE
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig10_sgi_filtering",
        description="SGI: original vertical >> horizontal; modified vertical closes the gap",
        paper=(
            "Original vertical filtering in the 10^5 ms range at low CPU "
            "counts; modified vertical near the original horizontal curve"
        ),
    )
    kpix = 1024 if quick else 16384
    cpus = (1, 4) if quick else (1, 2, 4, 8, 12, 16)
    wl = standard_workload(kpix, quick)
    prof = filtering_profile(
        wl,
        SGI_POWER_CHALLENGE,
        cpus,
        strategies=(VerticalStrategy.NAIVE, VerticalStrategy.AGGREGATED),
        params=jasper_params(),
    )
    for n in cpus:
        result.rows.append(
            {
                "cpus": n,
                "orig_vertical_ms": prof.vertical(VerticalStrategy.NAIVE, n),
                "mod_vertical_ms": prof.vertical(VerticalStrategy.AGGREGATED, n),
                "orig_horizontal_ms": prof.horizontal(VerticalStrategy.NAIVE, n),
            }
        )
    v1 = prof.vertical(VerticalStrategy.NAIVE, 1)
    h1 = prof.horizontal(VerticalStrategy.NAIVE, 1)
    m1 = prof.vertical(VerticalStrategy.AGGREGATED, 1)
    result.check("big gap: original vertical >= 4x horizontal", v1 >= 4.0 * h1)
    result.check("modified vertical within 60% of horizontal", m1 <= 1.6 * h1)
    if not quick:
        # SGI is slower per CPU than the Intel machine.
        intel = filtering_profile(
            wl, INTEL_SMP, (1,), (VerticalStrategy.NAIVE,), params=jasper_params()
        )
        result.check(
            "SGI serial vertical slower than Intel serial vertical",
            v1 > intel.vertical(VerticalStrategy.NAIVE, 1),
        )
        last = cpus[-1]
        result.check(
            "modified vertical keeps scaling to 16 CPUs (>= 4.5x of itself)",
            m1 / prof.vertical(VerticalStrategy.AGGREGATED, last) >= 4.5,
        )
    return result
