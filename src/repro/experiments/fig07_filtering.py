"""Fig. 7 -- Original vs improved filtering times (Intel, 16384 Kpixel).

The paper's bars (1..4 CPUs): naive vertical filtering takes >6x the
horizontal time (32158 ms vs 4770 ms at one CPU) and barely improves
with CPUs (17209 ms at four); the improved (aggregated-columns) vertical
filter drops to roughly the horizontal time -- "almost factor 10 is
gained by our technique, horizontal and vertical filtering are now
almost identical with respect to runtime."
"""

from __future__ import annotations

from ..core.study import filtering_profile
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jj2000_params, standard_workload

__all__ = ["run", "PAPER_VERTICAL_MS", "PAPER_HORIZONTAL_MS"]

#: Fig. 7 bar readings (ms) at 1..4 CPUs.
PAPER_VERTICAL_MS = (32158.0, 23650.0, 17145.0, 17209.0)
PAPER_HORIZONTAL_MS = (4770.0, 2485.0, 1670.0, 1295.0)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig07_filtering",
        description="Vertical >> horizontal with naive filtering; improved vertical ~= horizontal",
        paper=(
            "1 CPU: vertical 32158 ms vs horizontal 4770 ms (6.7x); improved "
            "vertical ~= horizontal; ~10x gained at 4 CPUs"
        ),
    )
    kpix = 4096 if quick else 16384
    cpus = (1, 4) if quick else (1, 2, 3, 4)
    wl = standard_workload(kpix, quick)
    prof = filtering_profile(
        wl,
        INTEL_SMP,
        cpus,
        strategies=(VerticalStrategy.NAIVE, VerticalStrategy.AGGREGATED),
        params=jj2000_params(),
    )
    for n in cpus:
        result.rows.append(
            {
                "cpus": n,
                "vertical_ms": prof.vertical(VerticalStrategy.NAIVE, n),
                "vert_improved_ms": prof.vertical(VerticalStrategy.AGGREGATED, n),
                "horizontal_ms": prof.horizontal(VerticalStrategy.NAIVE, n),
            }
        )

    v1 = prof.vertical(VerticalStrategy.NAIVE, 1)
    h1 = prof.horizontal(VerticalStrategy.NAIVE, 1)
    vi1 = prof.vertical(VerticalStrategy.AGGREGATED, 1)
    result.check("serial vertical/horizontal ratio in 4..14 (paper 6.7)", 4.0 <= v1 / h1 <= 14.0)
    result.check("improved vertical within 40% of horizontal", abs(vi1 - h1) <= 0.4 * h1)
    result.check("improvement factor >= 4x serially (paper ~6.5x)", v1 / vi1 >= 4.0)
    last = cpus[-1]
    v_last = prof.vertical(VerticalStrategy.NAIVE, last)
    vi_last = prof.vertical(VerticalStrategy.AGGREGATED, last)
    result.check(
        f"improvement factor at {last} CPUs >= 5x (paper ~10x)", v_last / vi_last >= 5.0
    )
    return result
