"""Extension -- error-resilient decoding under injected faults.

The paper targets fast, parallel coding on dedicated multiprocessors;
this extension evaluates the error-resilience layer built on the same
codec (v2 resync framing + concealing decoder, mirroring JPEG2000
Part 1's SOP/EPH markers and JPWL header protection).  It measures

- the byte overhead of the resilient container on a 512x512 image
  (must stay below 3%), and
- PSNR as a function of injected corruption rate, comparing the framed
  v2 stream against the unframed v1 stream under the same resilient
  decoder, plus the strict decoder's failure rate on the same inputs.

All corruption is deterministic (:mod:`repro.faults`): the same
(mode, rate, seed) always damages the same bytes.  The main header is
left intact (``skip_prefix``), modelling JPWL's error-protected header.
"""

from __future__ import annotations

import math

import numpy as np

from .. import faults
from ..codec import CodecParams, decode_image, encode_image
from ..image import SyntheticSpec, psnr, synthetic_image
from ..tier2 import CodestreamError
from ..tier2.codestream import main_header_size
from .common import ExperimentResult

__all__ = ["run"]

#: Corruption model for the PSNR curve: contiguous randomized bursts,
#: the case resync framing is designed for.
_CURVE_MODE = "burst"


def _mean_psnr(ref, data, rates, seeds, skip):
    """Resilient-decode damaged copies of ``data``; mean PSNR per rate.

    Returns (psnr_per_rate, raised_count) -- raised_count must stay 0.
    """
    means = []
    raised = 0
    for rate in rates:
        vals = []
        for seed in seeds:
            bad = faults.inject(
                data, mode=_CURVE_MODE, rate=rate, seed=seed, skip_prefix=skip
            )
            try:
                out, _report = decode_image(bad, resilient=True)
            except CodestreamError:
                # The "never raises" contract under test: count the
                # breach (the check below requires zero).  Anything
                # *other* than a decode error is a real bug and must
                # fail the experiment loudly.
                raised += 1
                continue
            vals.append(min(psnr(ref, out), 99.0))
        means.append(float(np.mean(vals)) if vals else 0.0)
    return means, raised


def _strict_failures(data, rates, seeds, skip):
    """How many damaged copies the strict decoder rejects or mangles."""
    failures = 0
    total = 0
    for rate in rates:
        if rate == 0.0:
            continue
        for seed in seeds:
            total += 1
            bad = faults.inject(
                data, mode=_CURVE_MODE, rate=rate, seed=seed, skip_prefix=skip
            )
            try:
                decode_image(bad)
            except CodestreamError:
                # Strict parsing normalizes all damage to CodestreamError;
                # that rejection is exactly what this counter measures.
                failures += 1
    return failures, total


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_resilience",
        description="Extension: resilient decoding under injected faults",
        paper=(
            "Not in the paper; models JPEG2000 Part 1 resync markers "
            "(SOP/EPH) and JPWL header protection: graceful PSNR "
            "degradation instead of decode failure, small byte overhead"
        ),
    )

    # --- framing overhead on a large lossless stream ---------------------
    side = 256 if quick else 512
    big = synthetic_image(SyntheticSpec(side, side, "mix", seed=0))
    p53 = CodecParams(filter_name="5/3", levels=5)
    plain = encode_image(big, p53)
    framed = encode_image(big, p53.with_(resilience=True))
    overhead = (len(framed.data) - len(plain.data)) / len(plain.data)
    result.rows.append(
        {"metric": f"framing overhead, {side}x{side} lossless (%)",
         "value": 100.0 * overhead, "unframed v1": None}
    )
    result.check(
        f"framing overhead < 3% on {side}x{side} mix", overhead < 0.03
    )

    # Clean framed streams decode bit-exact, with a clean report.
    rec, report = decode_image(framed.data, resilient=True)
    result.check(
        "clean framed stream round-trips bit-exact (5/3)",
        bool(np.array_equal(rec, big)) and report.clean,
    )

    # --- PSNR vs corruption rate ----------------------------------------
    curve_side = 64 if quick else 128
    rates = (0.0, 1e-3, 1e-2, 5e-2) if quick else (0.0, 1e-4, 1e-3, 1e-2, 5e-2, 0.1)
    seeds = (0, 1) if quick else (0, 1, 2)

    img = synthetic_image(SyntheticSpec(curve_side, curve_side, "mix", seed=7))
    lossy = CodecParams(levels=4, base_step=1 / 64, cb_size=32,
                        target_bpp=(0.5, 1.0, 2.0))
    enc_framed = encode_image(img, lossy.with_(resilience=True))
    enc_plain = encode_image(img, lossy)

    psnr_framed, raised_f = _mean_psnr(
        img, enc_framed.data, rates, seeds, main_header_size(True)
    )
    psnr_plain, raised_p = _mean_psnr(
        img, enc_plain.data, rates, seeds, main_header_size(False)
    )
    for rate, pf, pp in zip(rates, psnr_framed, psnr_plain):
        result.rows.append(
            {"metric": f"mean PSNR at burst rate {rate:g} (dB)",
             "value": pf, "unframed v1": pp}
        )

    result.check(
        "resilient decode never raises (framed or unframed)",
        raised_f == 0 and raised_p == 0,
    )
    # Degradation is monotone on average: each step down the curve may
    # recover a little (seeded noise) but never climbs materially, and
    # heavy corruption ends well below the clean point.
    monotone = all(
        b <= a + 2.0 for a, b in zip(psnr_framed, psnr_framed[1:])
    ) and psnr_framed[-1] < psnr_framed[0] - 3.0
    result.check("framed PSNR degrades monotonically with rate", monotone)
    # Resync framing beats the unframed container once damage is real:
    # compare the moderate-and-up tail of the curves.
    tail = slice(len(rates) // 2, None)
    result.check(
        "framed v2 >= unframed v1 PSNR at moderate+ rates",
        float(np.mean(psnr_framed[tail])) >= float(np.mean(psnr_plain[tail])) - 0.5,
    )

    failures, total = _strict_failures(
        enc_framed.data, rates, seeds, main_header_size(True)
    )
    result.rows.append(
        {"metric": f"strict decode failures (of {total} damaged streams)",
         "value": float(failures), "unframed v1": None}
    )
    result.check(
        "strict decoding rejects most damaged streams", failures >= total // 2
    )
    assert math.isfinite(psnr_framed[0])
    return result
