"""Fig. 6 -- Parallel runtime analysis of JJ2000 on the 4-CPU Intel SMP.

The paper (naive filtering, 4 CPUs): "An overall speedup of ~1.75 is
achieved only ... the speedup corresponding to the encoding stage is
about 3.1 whereas the wavelet transform speedup is ~1.8 at most."
"""

from __future__ import annotations

from ..perf.costmodel import simulate_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jj2000_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig06_parallel",
        description="4-CPU JJ2000, naive filtering: overall ~1.75x, tier-1 ~3.1x, DWT <= ~1.8x",
        paper="Overall 1.75x; encoding-stage ~3.1x; DWT ~1.8x at most (4 CPUs)",
    )
    sizes = (256, 1024) if quick else (256, 1024, 4096, 16384)
    params = jj2000_params()
    for kpix in sizes:
        wl = standard_workload(kpix, quick)
        s1 = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=params)
        s4 = simulate_encode(wl, INTEL_SMP, 4, VerticalStrategy.NAIVE, params=params)
        overall = s1.total_ms / s4.total_ms
        t1_speedup = s1.stage_ms["tier-1 coding"] / s4.stage_ms["tier-1 coding"]
        dwt_speedup = s1.dwt_ms() / s4.dwt_ms()
        result.rows.append(
            {
                "size": f"{kpix}K",
                "serial_ms": s1.total_ms,
                "cpu4_ms": s4.total_ms,
                "overall_x": overall,
                "tier1_x": t1_speedup,
                "dwt_x": dwt_speedup,
            }
        )
        lo = 1.1 if kpix < 1024 else 1.4  # tiny images: overheads eat the gain
        result.check(f"{kpix}K: overall speedup in {lo}..2.4", lo <= overall <= 2.4)
        result.check(f"{kpix}K: tier-1 speedup in 2.6..4.0", 2.6 <= t1_speedup <= 4.0)
        result.check(f"{kpix}K: DWT speedup <= 2.3 (cache/bus-limited)", dwt_speedup <= 2.3)
        result.check(f"{kpix}K: tier-1 parallelizes better than DWT", t1_speedup > dwt_speedup)
    return result
