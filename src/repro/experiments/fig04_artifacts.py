"""Fig. 4 -- Visual artifacts at 0.125 bpp: JPEG vs JPEG2000 vs tiling.

The paper shows the Lena center crop coded at 0.125 bpp: JPEG exhibits
8x8 blocking, untiled JPEG2000 does not, and JPEG2000 with 32x32 tiles
reintroduces blocking at tile boundaries.  We quantify the same effect
on synthetic imagery with a *blockiness* metric: the mean absolute
gradient across grid boundaries divided by the mean absolute gradient
elsewhere (1.0 = no boundary artifacts).
"""

from __future__ import annotations

import numpy as np

from ..baselines import jpeg_decode, jpeg_encode
from ..codec import CodecParams, decode_image, encode_image
from ..image import SyntheticSpec, psnr, rate_bpp, synthetic_image
from .common import ExperimentResult

__all__ = ["run", "blockiness"]


def blockiness(image: np.ndarray, grid: int) -> float:
    """Boundary-to-interior gradient ratio along a ``grid``-pixel lattice."""
    img = np.asarray(image, dtype=np.float64)
    dx = np.abs(np.diff(img, axis=1))
    cols = np.arange(dx.shape[1])
    on_boundary = (cols + 1) % grid == 0
    dy = np.abs(np.diff(img, axis=0))
    rows = np.arange(dy.shape[0])
    on_boundary_r = (rows + 1) % grid == 0
    boundary = float(np.mean(dx[:, on_boundary])) + float(np.mean(dy[on_boundary_r, :]))
    interior = float(np.mean(dx[:, ~on_boundary])) + float(np.mean(dy[~on_boundary_r, :]))
    if interior == 0:
        return 1.0
    return boundary / interior


def _jpeg_at_rate(img: np.ndarray, target_bpp: float):
    """Binary-search JPEG quality for a target rate."""
    lo, hi = 1, 95
    best = None
    for _ in range(8):
        q = (lo + hi) // 2
        data = jpeg_encode(img, q)
        bpp = rate_bpp(len(data), *img.shape)
        if best is None or abs(bpp - target_bpp) < abs(best[1] - target_bpp):
            best = (data, bpp, q)
        if bpp > target_bpp:
            hi = q - 1
        else:
            lo = q + 1
        if lo > hi:
            break
    return best


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig04_artifacts",
        description="0.125 bpp: JPEG blocks at 8px; untiled JPEG2000 clean; tiled JPEG2000 blocks at tile grid",
        paper=(
            "Fig. 4 shows visible 8x8 blocking for JPEG, none for untiled "
            "JPEG2000, and tile-boundary artifacts for 32x32-tile JPEG2000"
        ),
    )
    side = 128 if quick else 256
    tile = 32
    target = 0.125 if not quick else 0.25
    img = synthetic_image(SyntheticSpec(side, side, "mix", seed=4))

    data, bpp, q = _jpeg_at_rate(img, target)
    jpeg_rec = jpeg_decode(data)
    row_jpeg = {
        "codec": f"JPEG(q={q})",
        "bpp": bpp,
        "psnr_db": psnr(img, jpeg_rec),
        "blockiness_8": blockiness(jpeg_rec, 8),
        "blockiness_tile": blockiness(jpeg_rec, tile),
    }

    levels = 4 if quick else 5
    enc = encode_image(img, CodecParams(levels=levels, base_step=1 / 64, target_bpp=(target,)))
    j2k_rec = decode_image(enc.data)
    row_j2k = {
        "codec": "JPEG2000",
        "bpp": enc.rate_bpp(),
        "psnr_db": psnr(img, j2k_rec),
        "blockiness_8": blockiness(j2k_rec, 8),
        "blockiness_tile": blockiness(j2k_rec, tile),
    }

    enc_t = encode_image(
        img,
        CodecParams(levels=levels, base_step=1 / 64, target_bpp=(target,), tile_size=tile),
    )
    tiled_rec = decode_image(enc_t.data)
    row_tiled = {
        "codec": f"JPEG2000 tiled {tile}",
        "bpp": enc_t.rate_bpp(),
        "psnr_db": psnr(img, tiled_rec),
        "blockiness_8": blockiness(tiled_rec, 8),
        "blockiness_tile": blockiness(tiled_rec, tile),
    }
    result.rows += [row_jpeg, row_j2k, row_tiled]

    result.check(
        "JPEG shows more 8px blockiness than untiled JPEG2000",
        row_jpeg["blockiness_8"] > row_j2k["blockiness_8"],
    )
    result.check(
        "tiled JPEG2000 shows more tile-grid blockiness than untiled",
        row_tiled["blockiness_tile"] > row_j2k["blockiness_tile"],
    )
    result.check(
        "untiled JPEG2000 beats tiled JPEG2000 in PSNR",
        row_j2k["psnr_db"] > row_tiled["psnr_db"],
    )
    return result
