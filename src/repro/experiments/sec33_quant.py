"""Sec. 3.3 -- Quantization-stage parallel speedup.

The paper: "Quantization can be parallelized easily and very
straightforward ... we see speedups of approximately 3.2 for performing
the quantization stage in parallel.  Nevertheless, the contribution of
this small computation slice to the whole coding time is too small to
show a reasonable performance improvement for the whole image coder."
"""

from __future__ import annotations

from ..perf.costmodel import simulate_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="sec33_quant",
        description="Quantization parallelizes to ~3.2x on 4 CPUs but is too small to matter overall",
        paper="Quantization-stage speedup ~3.2 (4 CPUs); negligible whole-coder impact",
    )
    kpix = 1024 if quick else 16384
    wl = standard_workload(kpix, quick)
    params = jasper_params()
    serial = simulate_encode(
        wl, INTEL_SMP, 1, VerticalStrategy.AGGREGATED, params=params, parallel_quant=False
    )
    par_with = simulate_encode(
        wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED, params=params, parallel_quant=True
    )
    par_without = simulate_encode(
        wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED, params=params, parallel_quant=False
    )
    q1 = serial.stage_ms["quantization"]
    q4 = par_with.stage_ms["quantization"]
    quant_speedup = q1 / q4
    overall_gain = par_without.total_ms / par_with.total_ms
    result.rows.append(
        {
            "quant_serial_ms": q1,
            "quant_4cpu_ms": q4,
            "quant_speedup_x": quant_speedup,
            "whole_coder_gain_x": overall_gain,
            "quant_share_of_serial": q1 / serial.total_ms,
        }
    )
    result.check("quantization speedup in 2.5..4.0 (paper ~3.2)", 2.5 <= quant_speedup <= 4.0)
    result.check("whole-coder gain from it below 25%", overall_gain < 1.25)
    result.check("quantization is a small slice of serial time (<15%)", q1 < 0.15 * serial.total_ms)
    return result
