"""Extension -- real execution backends under the differential contract.

The paper's results come from genuinely parallel hardware; this repo's
*measured* numbers historically came from a thread pool that CPython's
GIL serializes.  The ``processes`` backend closes that gap: the same
static decompositions (Secs. 3.2/3.3) run on a process pool sharing
arrays through ``multiprocessing.shared_memory``.  This experiment
encodes one Fig. 6/9-style workload on every backend and holds them to
the differential contract -- byte-identical codestreams, bit-exact
round-trips, and equivalent observability (same per-worker task counts
feeding the Fig.-3 stage tables) -- while recording the measured wall
times for context.  Wall-clock *ratios* are environment-dependent and
deliberately unchecked; correctness equivalences are the checks.
"""

from __future__ import annotations

import time

import numpy as np

from ..codec import CodecParams, decode_image, encode_image
from ..core.backend import BACKEND_NAMES, get_backend
from ..image import SyntheticSpec, synthetic_image
from ..obs import Tracer
from .common import ExperimentResult

__all__ = ["run"]

_POOL_PHASES = ("tier-1 encode pool",)


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_backends",
        description="Extension: serial/threads/processes execution backends",
        paper=(
            "Not in the paper (its parallelism is real SMP hardware); "
            "contract derived from its structure: static partitions only "
            "re-order independent work, so every backend must emit "
            "byte-identical codestreams"
        ),
    )
    side = 128 if quick else 256
    image = synthetic_image(SyntheticSpec(side, side, "mix", seed=9))
    params = CodecParams(
        levels=3 if quick else 5, filter_name="9/7", cb_size=32,
        base_step=1 / 64, target_bpp=(0.5, 2.0),
    )
    n_workers = 2

    streams = {}
    tier1_tasks = {}
    wall = {}
    for name in BACKEND_NAMES:
        # One tracer per measured backend run, by design: each backend's
        # timeline must be separable.  Not a hot loop (three iterations).
        tracer = Tracer()  # repro: noqa[obs-zero-cost]
        with get_backend(name, n_workers) as bk:
            t0 = time.perf_counter()
            res = encode_image(image, params, tracer=tracer, backend=bk)
            wall[name] = time.perf_counter() - t0
        streams[name] = res.data
        tier1_tasks[name] = sum(
            1 for t in tracer.tasks if t.phase in _POOL_PHASES
        )
        result.rows.append(
            {
                "backend": name,
                "encode (s)": wall[name],
                "bytes": len(res.data),
                "tier-1 tasks": tier1_tasks[name],
            }
        )

    result.check(
        "all backends byte-identical",
        len(set(streams.values())) == 1,
    )
    result.check(
        "observability parity (same tier-1 task count per backend)",
        len(set(tier1_tasks.values())) == 1 and tier1_tasks["serial"] > 0,
    )

    reference = decode_image(streams["serial"])
    decode_equal = all(
        np.array_equal(
            decode_image(streams["serial"], n_workers=n_workers, backend=name),
            reference,
        )
        for name in BACKEND_NAMES
    )
    result.check("decodes bit-exact across backends", decode_equal)

    lossless = CodecParams(levels=3, filter_name="5/3", cb_size=32)
    with get_backend("processes", n_workers) as bk:
        data = encode_image(image, lossless, backend=bk).data
        out = decode_image(data, backend=bk)
    result.check(
        "lossless round-trip exact on the process pool",
        np.array_equal(out, image),
    )
    result.check(
        "process pool byte-identical on the lossless path",
        data == encode_image(image, lossless).data,
    )
    return result
