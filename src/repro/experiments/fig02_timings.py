"""Fig. 2 -- Compression timings of four codecs vs image size.

The paper: "JPEG is the by far fastest algorithm, whereas both JPEG2000
implementations are slowest" and "there is not much difference between
the C and JAVA implementations".

Two complementary measurements:

1. **Real wall-clock** of this repository's own codecs (vectorized JPEG,
   SPIHT, JPEG2000) on small-to-medium sizes -- the *ordering and growth*
   claims, on real executions.
2. **Simulated Intel timings** of the modelled Jasper and JJ2000 codecs
   on the paper's axis sizes -- the JJ2000-vs-Jasper proximity claim.
"""

from __future__ import annotations

import time

from ..baselines import jpeg_encode, spiht_encode
from ..codec import CodecParams, encode_image
from ..image import SyntheticSpec, synthetic_image
from ..perf.costmodel import simulate_encode
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, jj2000_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig02_timings",
        description="Compression timings: JPEG << SPIHT < Jasper ~ JJ2000",
        paper=(
            "JPEG fastest by far; SPIHT in between; Jasper and JJ2000 slowest "
            "and close to each other; all roughly linear in pixels"
        ),
    )

    def _time(fn, repeats: int = 3) -> float:
        """Min-of-N wall time: robust against scheduler noise."""
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    sides = (128,) if quick else (128, 256, 512)
    real = {}
    for side in sides:
        img = synthetic_image(SyntheticSpec(side, side, "mix", seed=2))
        t_jpeg = _time(lambda: jpeg_encode(img, 75))
        t_spiht = _time(lambda: spiht_encode(img, 2.0, levels=4))
        t_j2k = _time(
            lambda: encode_image(img, CodecParams(levels=4, base_step=1 / 64, cb_size=32)),
            repeats=1,  # the slow one: a single run is unambiguous
        )
        real[side] = (t_jpeg, t_spiht, t_j2k)
        result.rows.append(
            {
                "kind": "real",
                "size": f"{side}x{side}",
                "JPEG_s": t_jpeg,
                "SPIHT_s": t_spiht,
                "JPEG2000_s": t_j2k,
            }
        )

    for side, (tj, ts, tk) in real.items():
        # JPEG vs SPIHT margins are tight at tiny sizes; assert the
        # ordering where it is decisive and use a noise allowance below.
        result.check(f"real {side}px: JPEG faster than SPIHT (20% slack)", tj < ts * 1.2)
        result.check(f"real {side}px: JPEG2000 slowest", tk > ts and tk > tj)

    sizes = (256, 1024) if quick else (256, 1024, 4096, 16384)
    sim = {}
    for kpix in sizes:
        wl = standard_workload(kpix, quick)
        jj = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=jj2000_params())
        ja = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.NAIVE, params=jasper_params())
        sim[kpix] = (jj.total_ms, ja.total_ms)
        result.rows.append(
            {
                "kind": "simulated",
                "size": f"{kpix}K",
                "JJ2000_ms": jj.total_ms,
                "Jasper_ms": ja.total_ms,
            }
        )
    for kpix, (jj_ms, ja_ms) in sim.items():
        result.check(
            f"sim {kpix}K: Jasper within 35% of JJ2000",
            0.65 <= ja_ms / jj_ms <= 1.0,
        )
    ks = sorted(sim)
    growth = sim[ks[-1]][0] / sim[ks[0]][0]
    pixels_ratio = ks[-1] / ks[0]
    result.check(
        "sim: near-linear growth in pixels",
        0.5 * pixels_ratio <= growth <= 2.0 * pixels_ratio,
    )
    return result
