"""Extension -- fault-tolerant execution: recovery overhead and identity.

The paper assumes a healthy SMP; real deployments lose workers (OOM
kills, wedged threads, flaky kernels).  The supervision layer
(:mod:`repro.core.supervise`) recovers by re-running only the unfinished
units of the idempotent decomposition, so the *product* is unaffected --
the only cost is time.  This experiment measures that cost: one
baseline encode per backend, the same encode supervised with no fault
(the supervision tax), and supervised encodes under each compute-fault
kind (``exc`` / ``kill`` / ``hang``), each row checked byte-identical
against the serial reference.  The degradation ladder is exercised with
a persistent fault that forces the run down to ``serial``.

Wall-clock *ratios* are environment-dependent and deliberately
unchecked; byte-identity and report accounting are the checks.
"""

from __future__ import annotations

import time

from ..codec import CodecParams, encode_image
from ..core.backend import get_backend
from ..core.supervise import SupervisionPolicy, supervised
from ..faults import ComputeFault, FaultyBackend
from ..image import SyntheticSpec, synthetic_image
from .common import ExperimentResult

__all__ = ["run"]


def _encode(image, params, backend=None, n_workers=2):
    t0 = time.perf_counter()
    result = encode_image(image, params, backend=backend, n_workers=n_workers)
    return result, time.perf_counter() - t0


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_faulttolerance",
        description="Extension: supervised recovery from compute faults",
        paper=(
            "Not in the paper (it assumes healthy CPUs); contract derived "
            "from its structure: the static decomposition is idempotent, "
            "so re-running unfinished units after a fault must emit the "
            "byte-identical codestream"
        ),
    )
    side = 96 if quick else 192
    image = synthetic_image(SyntheticSpec(side, side, "mix", seed=17))
    params = CodecParams(
        levels=3, filter_name="5/3", cb_size=32 if quick else 64
    )
    n_workers = 2
    policy = SupervisionPolicy(max_retries=2, backoff_base=0.0)
    reference, t_serial = _encode(image, params, n_workers=1)
    result.rows.append(
        {"run": "serial baseline", "backend": "serial",
         "wall (s)": t_serial, "retries": 0, "identical": True}
    )

    backends = ("threads",) if quick else ("threads", "processes")
    faults = {
        "none": [],
        "exc": [ComputeFault("exc", op="map")],
        "kill": [ComputeFault("kill", op="map")],
        "hang": [ComputeFault("hang", op="map", arg=0.2)],
    }
    identical = True
    accounted = True
    for backend in backends:
        baseline, t_base = _encode(
            image, params, backend=backend, n_workers=n_workers
        )
        result.rows.append(
            {"run": "unsupervised", "backend": backend,
             "wall (s)": t_base, "retries": 0,
             "identical": baseline.data == reference.data}
        )
        identical &= baseline.data == reference.data
        for label, schedule in faults.items():
            # hang needs a killable worker; skip it on the thread pool
            # (an abandoned thread would outlive the attempt harmlessly
            # but add noise to the timing rows).
            if label == "hang" and backend != "processes":
                continue
            pol = policy
            if label == "hang":
                pol = SupervisionPolicy(
                    max_retries=2, phase_timeout=0.1, backoff_base=0.0
                )
            sup = supervised(
                FaultyBackend(get_backend(backend, n_workers), schedule),
                pol, owns_inner=True,
            )
            try:
                res, wall = _encode(
                    image, params, backend=sup, n_workers=n_workers
                )
            finally:
                sup.close()
            same = res.data == reference.data
            identical &= same
            rep = sup.report
            if label == "none":
                accounted &= rep.clean
            else:
                accounted &= rep.retries >= 1 and not rep.clean
            result.rows.append(
                {"run": f"supervised fault={label}", "backend": backend,
                 "wall (s)": wall, "retries": rep.retries,
                 "identical": same}
            )

    # Degradation ladder: a persistent kernel fault pushes the run all
    # the way down to the serial rung -- and the bytes still match.
    sup = supervised(
        FaultyBackend(
            get_backend("threads", n_workers),
            [ComputeFault("exc", op="map", persistent=True)],
        ),
        SupervisionPolicy(max_retries=1, backoff_base=0.0),
        owns_inner=True,
    )
    try:
        res, wall = _encode(image, params, backend=sup, n_workers=n_workers)
    finally:
        sup.close()
    identical &= res.data == reference.data
    result.rows.append(
        {"run": "supervised persistent exc (degrades)",
         "backend": f"threads->{sup.report.final_backend}",
         "wall (s)": wall, "retries": sup.report.retries,
         "identical": res.data == reference.data}
    )

    result.check("every run byte-identical to the serial reference", identical)
    result.check("supervision reports account for every fault", accounted)
    result.check(
        "persistent fault degraded to the serial rung",
        sup.report.degraded and sup.report.final_backend == "serial",
    )
    return result
