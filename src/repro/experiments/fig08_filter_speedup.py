"""Fig. 8 -- Speedup of the filtering routines, 1..4 CPUs (Intel).

The paper: horizontal filtering scales near-linearly (~3.7 at 4 CPUs);
naive vertical filtering saturates below 2 -- "the constrained speedup of
the original filtering routine is due to the congestion of the bus caused
by the high number of cache misses"; improved vertical filtering scales
like horizontal again.
"""

from __future__ import annotations

from ..core.speedup import SpeedupSeries
from ..core.study import filtering_profile
from ..smp.machine import INTEL_SMP
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jj2000_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig08_filter_speedup",
        description="Horizontal ~linear; naive vertical saturates (bus-bound); improved vertical ~linear",
        paper="At 4 CPUs: horizontal ~3.7x, naive vertical ~1.9x (flattening), improved vertical ~3.7x",
    )
    kpix = 4096 if quick else 16384
    cpus = (1, 2, 4) if quick else (1, 2, 3, 4)
    wl = standard_workload(kpix, quick)
    prof = filtering_profile(
        wl,
        INTEL_SMP,
        cpus,
        strategies=(VerticalStrategy.NAIVE, VerticalStrategy.AGGREGATED),
        params=jj2000_params(),
    )
    series = {
        "vertical": SpeedupSeries(
            "vertical",
            "naive vertical @1",
            prof.vertical(VerticalStrategy.NAIVE, 1),
            tuple(cpus),
            tuple(prof.vertical(VerticalStrategy.NAIVE, c) for c in cpus),
        ),
        "vert_improved": SpeedupSeries(
            "vert. improved",
            "improved vertical @1",
            prof.vertical(VerticalStrategy.AGGREGATED, 1),
            tuple(cpus),
            tuple(prof.vertical(VerticalStrategy.AGGREGATED, c) for c in cpus),
        ),
        "horizontal": SpeedupSeries(
            "horizontal",
            "horizontal @1",
            prof.horizontal(VerticalStrategy.NAIVE, 1),
            tuple(cpus),
            tuple(prof.horizontal(VerticalStrategy.NAIVE, c) for c in cpus),
        ),
    }
    for i, n in enumerate(cpus):
        result.rows.append(
            {
                "cpus": n,
                "vertical_x": series["vertical"].speedups[i],
                "vert_improved_x": series["vert_improved"].speedups[i],
                "horizontal_x": series["horizontal"].speedups[i],
            }
        )
    last = cpus[-1]
    result.check(
        f"naive vertical saturates below 2.2x at {last} CPUs",
        series["vertical"].at(last) < 2.2,
    )
    h_floor = 0.6 if quick else 0.75  # fork/join floors bite at quick scale
    result.check(
        f"horizontal >= {h_floor}x linear at {last} CPUs",
        series["horizontal"].at(last) >= h_floor * last,
    )
    result.check(
        "improved vertical scales like horizontal (within 25%)",
        abs(series["vert_improved"].at(last) - series["horizontal"].at(last))
        <= 0.25 * series["horizontal"].at(last),
    )
    if len(cpus) >= 3:
        result.check(
            "naive vertical speedup flattens (saturation)",
            series["vertical"].saturates(tolerance=0.25),
        )
    return result
