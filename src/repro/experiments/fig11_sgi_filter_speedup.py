"""Fig. 11 -- Vertical-filter speedup vs *original* Jasper (SGI).

The paper: "Distributing the load of the modified wavelet decomposition
with the aid of OpenMP to a number of processors, we can increase the
vertical filtering over all resolution levels by a factor of 80" -- the
product of the serial cache-fix gain and near-linear parallel scaling,
measured against the original serial vertical filtering.
"""

from __future__ import annotations

from ..core.speedup import SpeedupSeries
from ..core.study import filtering_profile
from ..smp.machine import SGI_POWER_CHALLENGE
from ..wavelet.strategies import VerticalStrategy
from .common import ExperimentResult, jasper_params, standard_workload

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="fig11_sgi_filter_speedup",
        description="Modified vertical filtering reaches ~80x vs original serial vertical (16 CPUs)",
        paper="~80x at 16 CPUs vs original Jasper vertical filtering; original saturates early",
    )
    kpix = 1024 if quick else 16384
    cpus = (1, 4) if quick else (1, 2, 4, 8, 12, 16)
    wl = standard_workload(kpix, quick)
    prof = filtering_profile(
        wl,
        SGI_POWER_CHALLENGE,
        cpus,
        strategies=(VerticalStrategy.NAIVE, VerticalStrategy.AGGREGATED),
        params=jasper_params(),
    )
    ref = prof.vertical(VerticalStrategy.NAIVE, 1)
    orig = SpeedupSeries(
        "original vertical",
        "original serial vertical",
        ref,
        tuple(cpus),
        tuple(prof.vertical(VerticalStrategy.NAIVE, c) for c in cpus),
    )
    mod = SpeedupSeries(
        "modified vertical",
        "original serial vertical",
        ref,
        tuple(cpus),
        tuple(prof.vertical(VerticalStrategy.AGGREGATED, c) for c in cpus),
    )
    for i, n in enumerate(cpus):
        result.rows.append(
            {"cpus": n, "orig_x": orig.speedups[i], "modified_x": mod.speedups[i]}
        )
    if not quick:
        result.check("modified vertical at 16 CPUs in 40..160x (paper ~80x)",
                     40.0 <= mod.at(16) <= 160.0)
        result.check("original vertical stays below 6x", orig.max_speedup() < 6.0)
    result.check("modified always beats original at same CPUs",
                 all(m >= o for m, o in zip(mod.speedups, orig.speedups)))
    result.check("modified superlinear vs original reference",
                 mod.at(cpus[-1]) > cpus[-1])
    return result
