"""Extension -- the observability layer measuring the pipeline itself.

The paper's evaluation is built from measurements: Fig. 3's per-stage
breakdown and Sec. 3.4's sequential-fraction/Amdahl analysis.  This
extension turns the tracing layer (:mod:`repro.obs`) on the codec and
verifies that the measurements it produces are complete and
self-consistent:

- a traced encode covers all nine Fig. 3 stages with nonzero time and
  the trace's stage total matches the end-to-end wall time;
- a traced multi-worker decode emits one task record per scheduled
  tier-1 code-block (the worker timeline is complete);
- the observed Amdahl report (sequential fraction, max speedup) agrees
  with :func:`repro.core.amdahl.amdahl_speedup` on the same fractions;
- the Chrome-trace and Prometheus exports survive a parse round-trip;
- tracing changes nothing: the traced encode's codestream is bit-exact
  against an untraced one.
"""

from __future__ import annotations

import json
import math

import numpy as np

from ..codec import CodecParams, decode_image, encode_image
from ..core.amdahl import amdahl_speedup
from ..image import SyntheticSpec, synthetic_image
from ..obs import (
    STAGE_NAMES,
    MetricsRegistry,
    Tracer,
    amdahl_report,
    chrome_trace,
    parse_prometheus,
    record_encode_metrics,
    record_trace_metrics,
)
from .common import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_observability",
        description="Extension: pipeline tracing, worker timelines, Amdahl accounting",
        paper=(
            "Not a paper figure; reproduces the paper's *method*: Fig. 3's "
            "per-stage breakdown and Sec. 3.4's sequential fraction become "
            "live measurements of this implementation"
        ),
    )

    side = 64 if quick else 128
    n_workers = 2 if quick else 4
    img = synthetic_image(SyntheticSpec(side, side, "mix", seed=3))
    params = CodecParams(levels=3, cb_size=16, base_step=1 / 64)

    # --- traced encode: Fig. 3 stage coverage ----------------------------
    tracer = Tracer()
    res = encode_image(img, params, tracer=tracer)
    stages = tracer.stage_seconds()
    total = sum(stages.values())
    for name in STAGE_NAMES:
        result.rows.append(
            {"metric": f"encode stage share: {name} (%)",
             "value": 100.0 * stages.get(name, 0.0) / total}
        )
    result.check(
        "all nine Fig. 3 stages traced with nonzero time",
        all(stages.get(name, 0.0) > 0.0 for name in STAGE_NAMES),
    )

    # Tracing must not perturb the product: bit-exact codestream.
    res_plain = encode_image(img, params)
    result.check(
        "traced encode is bit-exact vs untraced", res.data == res_plain.data
    )

    # --- observed Amdahl accounting (Sec. 3.4) ---------------------------
    rep = amdahl_report(tracer, n_cpus=n_workers)
    result.rows.append(
        {"metric": "observed sequential fraction", "value": rep.sequential_fraction}
    )
    result.rows.append(
        {"metric": f"predicted max speedup on {n_workers} CPUs",
         "value": rep.max_speedup}
    )
    result.check(
        "sequential fraction in (0, 1)", 0.0 < rep.sequential_fraction < 1.0
    )
    expected = amdahl_speedup(
        rep.serial_seconds, rep.parallel_seconds, n_workers
    )
    result.check(
        "amdahl_report agrees with core.amdahl.amdahl_speedup",
        math.isclose(rep.max_speedup, expected, rel_tol=1e-9),
    )
    result.check(
        "max speedup bounded by CPU count and the asymptote",
        1.0 < rep.max_speedup < min(n_workers, rep.asymptotic_speedup) + 1e-9,
    )

    # --- traced decode: complete worker timeline -------------------------
    dec_tracer = Tracer()
    out = decode_image(res.data, n_workers=n_workers, tracer=dec_tracer)
    result.check("traced decode reconstructs the image",
                 bool(np.isfinite(out).all()) and out.shape == img.shape)
    pool_tasks = [t for t in dec_tracer.tasks if t.phase == "tier-1 decode pool"]
    result.rows.append(
        {"metric": "tier-1 decode pool tasks", "value": float(len(pool_tasks))}
    )
    result.check(
        "one task record per scheduled code-block",
        len(pool_tasks) == len(res.blocks),
    )
    workers_seen = {t.worker for t in pool_tasks}
    result.check(
        f"tasks spread across the {n_workers} workers",
        len(workers_seen) == n_workers,
    )
    result.check(
        "task records are well-formed (t1 >= t0, waits >= 0)",
        all(
            t.t1 >= t.t0 and t.queue_wait >= 0.0 and t.barrier_wait >= 0.0
            for t in pool_tasks
        ),
    )

    # --- export round-trips ----------------------------------------------
    ct = json.loads(json.dumps(chrome_trace(dec_tracer)))
    xs = [e for e in ct["traceEvents"] if e.get("ph") == "X"]
    result.check(
        "Chrome trace JSON round-trips with well-formed X events",
        len(xs) > 0
        and all(
            isinstance(e.get("ts"), (int, float)) and e.get("dur", -1) >= 0
            for e in xs
        ),
    )
    registry = MetricsRegistry()
    record_encode_metrics(registry, res)
    record_trace_metrics(registry, tracer)
    parsed = parse_prometheus(registry.to_prometheus())
    result.check(
        "Prometheus exposition parses back with the encode counters",
        parsed.get("repro_blocks_coded_total") == float(len(res.blocks))
        and parsed.get("repro_bytes_emitted_total") == float(res.n_bytes),
    )
    return result
