"""Rate-distortion optimal truncation (the "R/D allocation" stage).

JPEG2000's post-compression rate-distortion optimization (PCRD-opt,
Taubman): every code-block's embedded stream offers truncation points at
pass boundaries; the allocator picks, per block, the truncation that
minimizes total distortion subject to a global byte budget.  The paper
counts this stage as intrinsically sequential but cheap (Fig. 3).
"""

from .pcrd import (
    BlockRateInfo,
    convex_hull_points,
    allocate_truncation,
    allocate_layers,
    lambda_for_budget,
)

__all__ = [
    "BlockRateInfo",
    "convex_hull_points",
    "allocate_truncation",
    "allocate_layers",
    "lambda_for_budget",
]
