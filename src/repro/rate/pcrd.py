"""PCRD-opt: convex-hull truncation search and Lagrangian budget fitting.

Given every code-block's pass table (cumulative rate in bytes, distortion
reduction per pass, already weighted by quantizer step and subband
synthesis gain), the allocator:

1. reduces each block's truncation candidates to the vertices of the
   lower convex hull of its rate-distortion curve (slopes strictly
   decreasing) -- truncating anywhere else is dominated;
2. for a Lagrange multiplier ``lambda``, each block independently keeps
   every hull vertex whose distortion-per-byte slope is ``>= lambda``;
3. bisects ``lambda`` so the total chosen rate meets the byte budget.

Multi-layer allocation runs step 2/3 once per layer with decreasing
budgets, producing the per-layer pass splits tier-2 packs into packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "BlockRateInfo",
    "convex_hull_points",
    "lambda_for_budget",
    "allocate_truncation",
    "allocate_layers",
]


@dataclass
class BlockRateInfo:
    """Rate-distortion candidates of one code-block.

    ``rates[k]`` is the cumulative segment length (bytes) if the block is
    truncated after pass ``k``; ``dists[k]`` the cumulative weighted
    distortion reduction.  Pass 0 of the arrays corresponds to "include
    nothing" and is implicit: arrays start at the first pass.
    """

    block_id: int
    rates: Sequence[float]
    dists: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.dists):
            raise ValueError("rates and dists must have equal length")

    @property
    def n_passes(self) -> int:
        return len(self.rates)


def convex_hull_points(rates: Sequence[float], dists: Sequence[float]) -> List[int]:
    """Indices of passes on the lower convex hull of (rate, dist).

    The returned indices have strictly decreasing distortion/rate slopes
    relative to their predecessor on the hull (with the origin prepended),
    which is the feasible-truncation set of PCRD-opt.
    """
    hull: List[int] = []
    for k in range(len(rates)):
        while True:
            r_prev, d_prev = (0.0, 0.0) if not hull else (rates[hull[-1]], dists[hull[-1]])
            dr = rates[k] - r_prev
            dd = dists[k] - d_prev
            if dr <= 0:
                # Same or lower rate with more distortion reduction
                # dominates the previous vertex.
                if dd >= 0 and hull:
                    hull.pop()
                    continue
                break
            slope = dd / dr
            if hull:
                r_pp, d_pp = (
                    (0.0, 0.0)
                    if len(hull) == 1
                    else (rates[hull[-2]], dists[hull[-2]])
                )
                prev_slope = (dists[hull[-1]] - d_pp) / max(rates[hull[-1]] - r_pp, 1e-12)
                if slope >= prev_slope:
                    hull.pop()
                    continue
            if dd <= 0:
                break  # adding this pass reduces nothing: never truncate here
            hull.append(k)
            break
    return hull


def _hull_slopes(info: BlockRateInfo) -> Tuple[List[int], List[float]]:
    hull = convex_hull_points(info.rates, info.dists)
    slopes: List[float] = []
    r_prev = d_prev = 0.0
    for k in hull:
        dr = info.rates[k] - r_prev
        dd = info.dists[k] - d_prev
        slopes.append(dd / max(dr, 1e-12))
        r_prev, d_prev = info.rates[k], info.dists[k]
    return hull, slopes


def _passes_for_lambda(info: BlockRateInfo, lam: float) -> int:
    """Number of passes kept at multiplier ``lam`` (0 = drop block)."""
    hull, slopes = _hull_slopes(info)
    chosen = 0
    for k, slope in zip(hull, slopes):
        if slope >= lam:
            chosen = k + 1
        else:
            break
    return chosen


def _total_rate(blocks: Sequence[BlockRateInfo], lam: float) -> float:
    total = 0.0
    for info in blocks:
        n = _passes_for_lambda(info, lam)
        if n:
            total += info.rates[n - 1]
    return total


def lambda_for_budget(
    blocks: Sequence[BlockRateInfo], budget_bytes: float, tol: float = 0.5
) -> float:
    """Largest ``lambda`` whose total chosen rate fits ``budget_bytes``.

    Bisection over the slope range; deterministic and monotone (rate is
    non-increasing in ``lambda``).
    """
    if budget_bytes <= 0:
        return math.inf
    if _total_rate(blocks, 0.0) <= budget_bytes:
        return 0.0  # everything fits
    lo, hi = 0.0, 1.0
    while _total_rate(blocks, hi) > budget_bytes:
        hi *= 2.0
        if hi > 1e18:
            return math.inf
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if _total_rate(blocks, mid) > budget_bytes:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return hi


def allocate_truncation(
    blocks: Sequence[BlockRateInfo], budget_bytes: float
) -> List[int]:
    """Single-layer allocation: passes kept per block under the budget."""
    lam = lambda_for_budget(blocks, budget_bytes)
    return [_passes_for_lambda(info, lam) for info in blocks]


def allocate_layers(
    blocks: Sequence[BlockRateInfo], layer_budgets: Sequence[float]
) -> List[List[int]]:
    """Multi-layer allocation.

    ``layer_budgets`` are *cumulative* byte budgets, strictly increasing
    (e.g. the byte targets of 0.0625/0.125/.../2.0 bpp layers).  Returns
    ``alloc[layer][block]`` = cumulative passes of ``block`` included up
    to ``layer``; monotone per block across layers.
    """
    if any(
        b2 <= b1 for b1, b2 in zip(layer_budgets, list(layer_budgets)[1:])
    ):
        raise ValueError("layer budgets must be strictly increasing")
    out: List[List[int]] = []
    floor = [0] * len(blocks)
    for budget in layer_budgets:
        passes = allocate_truncation(blocks, budget)
        passes = [max(p, f) for p, f in zip(passes, floor)]
        out.append(passes)
        floor = passes
    return out
