"""Filter-bank definitions for the JPEG2000 part-1 wavelet transforms.

Both transforms are implemented in lifting form (ITU-T T.800 Annex F).
The dataclass records everything the rest of the system needs:

- the lifting coefficients (used by :mod:`repro.wavelet.lifting`),
- the *effective filter length*, which drives the memory-access footprint
  in the cache model (the paper: "the filter length is longer than k,
  [where k] corresponds to the k-way associative cache"),
- the per-sample operation counts used by the :mod:`repro.perf` cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["FilterBank", "FILTER_5_3", "FILTER_9_7", "get_filter"]


@dataclass(frozen=True)
class FilterBank:
    """A two-channel wavelet filter bank in lifting form.

    Attributes
    ----------
    name:
        ``"5/3"`` or ``"9/7"``.
    reversible:
        True for the integer (lossless-capable) 5/3 transform.
    lifting_steps:
        Alternating predict/update multipliers.  For the 9/7 these are the
        standard (alpha, beta, gamma, delta); the 5/3 uses its rational
        predict/update realized with integer floor arithmetic instead.
    scale_low, scale_high:
        Final subband scaling (9/7 only): analysis lowpass gets DC gain 1,
        highpass gets Nyquist gain 2, matching T.800 Table F.4.
    analysis_low_length, analysis_high_length:
        Tap counts of the equivalent FIR filters -- the memory footprint
        per output sample used by the cache/work models (9 and 7 for the
        9/7; 5 and 3 for the 5/3).
    ops_per_sample:
        Arithmetic operations (multiply+add counted separately) that one
        lifting pass spends per *input* sample; feeds the cycle cost model.
    """

    name: str
    reversible: bool
    lifting_steps: Tuple[float, ...]
    scale_low: float
    scale_high: float
    analysis_low_length: int
    analysis_high_length: int
    ops_per_sample: int
    description: str = field(default="", compare=False)

    @property
    def max_length(self) -> int:
        """Longest equivalent FIR filter (the cache-footprint parameter)."""
        return max(self.analysis_low_length, self.analysis_high_length)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"FilterBank({self.name})"


#: Reversible LeGall 5/3 integer transform (JPEG2000 lossless path).
#: Lifting: d[n] = x[2n+1] - floor((x[2n]+x[2n+2]) / 2);
#:          s[n] = x[2n]   + floor((d[n-1]+d[n]+2) / 4).
FILTER_5_3 = FilterBank(
    name="5/3",
    reversible=True,
    lifting_steps=(-0.5, 0.25),
    scale_low=1.0,
    scale_high=1.0,
    analysis_low_length=5,
    analysis_high_length=3,
    ops_per_sample=4,
    description="LeGall 5/3 reversible integer lifting (T.800 F.4.8.2.2)",
)

#: Irreversible CDF 9/7 transform (JPEG2000 default lossy path; the
#: "7/9-biorthogonal filters" of the paper).  Four lifting steps plus the
#: subband scaling K = 1.230174104914001.
_K_97 = 1.230174104914001
FILTER_9_7 = FilterBank(
    name="9/7",
    reversible=False,
    lifting_steps=(
        -1.586134342059924,  # alpha (predict 1)
        -0.052980118572961,  # beta  (update 1)
        0.882911075530934,  # gamma (predict 2)
        0.443506852043971,  # delta (update 2)
    ),
    scale_low=1.0 / _K_97,
    scale_high=_K_97,
    analysis_low_length=9,
    analysis_high_length=7,
    ops_per_sample=8,
    description="CDF 9/7 irreversible lifting (T.800 F.4.8.2.1)",
)

#: Floating-point realization of the 5/3 lifting (no floor rounding).
#: Internal: used to compute synthesis energy gains for the reversible
#: transform, where exact integer lifting would distort the estimate.
FILTER_5_3_FLOAT = FilterBank(
    name="5/3-float",
    reversible=False,
    lifting_steps=(-0.5, 0.25),
    scale_low=1.0,
    scale_high=1.0,
    analysis_low_length=5,
    analysis_high_length=3,
    ops_per_sample=4,
    description="LeGall 5/3 lifting without integer rounding",
)

_FILTERS = {
    "5/3": FILTER_5_3,
    "9/7": FILTER_9_7,
    "53": FILTER_5_3,
    "97": FILTER_9_7,
    "5/3-float": FILTER_5_3_FLOAT,
}


def get_filter(name: str) -> FilterBank:
    """Look up a filter bank by name (``"5/3"``, ``"9/7"``, ``"53"``, ``"97"``)."""
    try:
        return _FILTERS[name]
    except KeyError:
        raise ValueError(f"unknown wavelet filter {name!r}; options: 5/3, 9/7") from None
