"""One-dimensional lifting transforms, vectorized along the other axis.

These routines implement the JPEG2000 1D_EXT filtering with whole-sample
symmetric boundary extension, operating on **axis 0** of a 2-D array so a
single call filters every column at once (the idiomatic NumPy realization
of a filter sweep; see the repository guide on vectorizing loops).  Row
filtering is performed by transposing.

The deinterleaved convention is used throughout: a length-``N`` signal
produces ``ceil(N/2)`` lowpass and ``floor(N/2)`` highpass samples
(even-indexed start, per the standard's default tile origin).

Lifting recurrences (T.800 Annex F), with ``x`` the extended signal:

- predict:  ``d[n] = x[2n+1] (+/-) f(x[2n], x[2n+2])``
- update:   ``s[n] = x[2n]   (+/-) g(d[n-1], d[n])``

Boundary handling reduces to two neighbor rules, implemented once:

- ``even[n+1]`` reflects onto ``even[-1]`` past the right edge,
- ``d[n-1]`` reflects onto ``d[0]`` past the left edge, and ``d[n]``
  reflects onto ``d[-1]`` when the lowpass channel is one sample longer
  (odd-length signals).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .filters import FilterBank

__all__ = ["dwt1d", "idwt1d"]


def _even_right(even: np.ndarray, n_odd: int) -> np.ndarray:
    """``r[n] = even[n+1]`` for the predict step, reflecting at the end."""
    if even.shape[0] == n_odd:
        return np.concatenate([even[1:], even[-1:]], axis=0)
    return even[1 : n_odd + 1]


def _odd_pair(odd: np.ndarray, n_even: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(l, r)`` with ``l[n] = d[n-1]`` and ``r[n] = d[n]`` for the update step.

    Reflection: ``l[0] = d[0]``; for odd-length signals (one more lowpass
    than highpass sample) ``r[-1] = d[-1]``.
    """
    n_odd = odd.shape[0]
    left = np.concatenate([odd[:1], odd[: n_even - 1]], axis=0)
    if n_odd == n_even:
        right = odd
    else:  # n_even == n_odd + 1
        right = np.concatenate([odd, odd[-1:]], axis=0)
    return left, right


def dwt1d(x: np.ndarray, bank: FilterBank) -> Tuple[np.ndarray, np.ndarray]:
    """Forward one-level lifting along axis 0.

    Parameters
    ----------
    x:
        ``(N, ...)`` array.  For the 5/3 this must be an integer array
        (the transform is exact); for the 9/7 it is promoted to float64.
    bank:
        :data:`~repro.wavelet.filters.FILTER_5_3` or
        :data:`~repro.wavelet.filters.FILTER_9_7`.

    Returns
    -------
    (low, high):
        Lowpass ``(ceil(N/2), ...)`` and highpass ``(floor(N/2), ...)``.
    """
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot transform an empty signal")
    if n == 1:
        # Single-sample signal passes through as lowpass unchanged.
        return np.array(x, copy=True), x[:0].copy()

    if bank.reversible:
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.integer):
            raise TypeError("5/3 reversible transform requires an integer array")
        even = x[0::2].astype(np.int64)
        odd = x[1::2].astype(np.int64)
        n_odd, n_even = odd.shape[0], even.shape[0]
        high = odd - ((even[:n_odd] + _even_right(even, n_odd)) >> 1)
        d_left, d_right = _odd_pair(high, n_even)
        low = even + ((d_left + d_right + 2) >> 2)
        return low, high

    y = np.asarray(x, dtype=np.float64)
    even = y[0::2].copy()
    odd = y[1::2].copy()
    n_odd, n_even = odd.shape[0], even.shape[0]

    for step, coef in enumerate(bank.lifting_steps):
        if step % 2 == 0:  # predict: updates the odd (highpass) channel
            odd += coef * (even[:n_odd] + _even_right(even, n_odd))
        else:  # update: updates the even (lowpass) channel
            d_left, d_right = _odd_pair(odd, n_even)
            even += coef * (d_left + d_right)
    return even * bank.scale_low, odd * bank.scale_high


def idwt1d(low: np.ndarray, high: np.ndarray, bank: FilterBank) -> np.ndarray:
    """Inverse of :func:`dwt1d` along axis 0 (bit-exact for the 5/3)."""
    n_even, n_odd = low.shape[0], high.shape[0]
    n = n_even + n_odd
    if n == 0:
        raise ValueError("cannot invert an empty decomposition")
    if n == 1:
        return np.array(low, copy=True)
    if not (n_even == n_odd or n_even == n_odd + 1):
        raise ValueError(f"inconsistent subband lengths {n_even}/{n_odd}")

    if bank.reversible:
        high = np.asarray(high, dtype=np.int64)
        low = np.asarray(low, dtype=np.int64)
        d_left, d_right = _odd_pair(high, n_even)
        even = low - ((d_left + d_right + 2) >> 2)
        odd = high + ((even[:n_odd] + _even_right(even, n_odd)) >> 1)
    else:
        even = np.asarray(low, dtype=np.float64) / bank.scale_low
        odd = np.asarray(high, dtype=np.float64) / bank.scale_high
        for step in range(len(bank.lifting_steps) - 1, -1, -1):
            coef = bank.lifting_steps[step]
            if step % 2 == 0:  # undo predict
                odd = odd - coef * (even[:n_odd] + _even_right(even, n_odd))
            else:  # undo update
                d_left, d_right = _odd_pair(odd, n_even)
                even = even - coef * (d_left + d_right)

    out = np.empty((n,) + tuple(low.shape[1:]), dtype=even.dtype)
    out[0::2] = even
    out[1::2] = odd
    return out
