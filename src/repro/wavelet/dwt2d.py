"""Two-dimensional multilevel Mallat decomposition.

At every decomposition level the current LL band is filtered along its
columns (**vertical filtering** -- the cache-hostile direction on row-major
arrays) and along its rows (**horizontal filtering**), producing the four
subbands ``LL``, ``HL``, ``LH``, ``HH``; the ``LL`` band then recurses.
The paper's default configuration is a five-level 9/7 decomposition.

Subband naming follows JPEG2000: the first letter is the *horizontal*
filter, the second the *vertical* filter; ``HL`` therefore contains
vertical-edge energy.  Level 1 is the finest (first) decomposition level.

The numerical transform here is strategy-independent -- the naive,
aggregated-columns and padded-width variants of Sec. 3.2 compute identical
coefficients and differ only in their memory-access schedule, which is
modelled by :mod:`repro.wavelet.strategies` and :mod:`repro.cachesim`.
(:func:`repro.wavelet.strategies.filter_columns_chunked` demonstrates the
numerical equivalence of column aggregation and is exercised in tests.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from .filters import FilterBank, get_filter
from .lifting import dwt1d, idwt1d

__all__ = ["Subbands", "dwt2d", "idwt2d", "subband_shapes", "synthesis_energy_gain"]

_ORIENTS = ("HL", "LH", "HH")


@dataclass
class Subbands:
    """A multilevel 2-D wavelet decomposition.

    Attributes
    ----------
    ll:
        The residual lowpass band after ``levels`` decompositions.
    details:
        ``details[k]`` holds the ``{"HL", "LH", "HH"}`` bands of level
        ``k + 1`` (level 1 = finest).
    shape:
        Original image shape ``(H, W)``.
    filter_name:
        ``"5/3"`` or ``"9/7"``.
    """

    ll: np.ndarray
    details: List[Dict[str, np.ndarray]]
    shape: Tuple[int, int]
    filter_name: str = "9/7"

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    def band(self, level: int, orient: str) -> np.ndarray:
        """Return one subband; ``orient="LL"`` requires ``level == levels``."""
        if orient == "LL":
            if level != self.levels:
                raise ValueError(f"LL exists only at level {self.levels}")
            return self.ll
        if not 1 <= level <= self.levels:
            raise ValueError(f"level {level} out of range 1..{self.levels}")
        return self.details[level - 1][orient]

    def iter_bands(self):
        """Yield ``(level, orient, array)`` coarse-to-fine, LL first.

        This is the resolution-progressive order tier-2 uses to emit
        packets.
        """
        yield self.levels, "LL", self.ll
        for level in range(self.levels, 0, -1):
            for orient in _ORIENTS:
                yield level, orient, self.details[level - 1][orient]

    def total_coefficients(self) -> int:
        """Number of coefficients across every subband (== H*W)."""
        return self.ll.size + sum(b.size for d in self.details for b in d.values())

    def to_matrix(self) -> np.ndarray:
        """Pack into the classic Mallat single-matrix layout.

        ``LL`` sits in the top-left corner, each level's ``HL`` to its
        right, ``LH`` below, ``HH`` diagonal.  Used by the SPIHT baseline
        and by visualization helpers.
        """
        h, w = self.shape
        out = np.zeros((h, w), dtype=self.ll.dtype)
        shapes = subband_shapes(h, w, self.levels)
        out[: self.ll.shape[0], : self.ll.shape[1]] = self.ll
        for level in range(1, self.levels + 1):
            lh_, hl_, hh_ = (self.details[level - 1][o] for o in ("LH", "HL", "HH"))
            (ll_h, ll_w) = shapes[(level, "LL")]
            out[:hl_.shape[0], ll_w : ll_w + hl_.shape[1]] = hl_
            out[ll_h : ll_h + lh_.shape[0], : lh_.shape[1]] = lh_
            out[ll_h : ll_h + hh_.shape[0], ll_w : ll_w + hh_.shape[1]] = hh_
        return out

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, levels: int, filter_name: str = "9/7"
    ) -> "Subbands":
        """Inverse of :meth:`to_matrix`."""
        h, w = matrix.shape
        shapes = subband_shapes(h, w, levels)
        details: List[Dict[str, np.ndarray]] = []
        for level in range(1, levels + 1):
            ll_h, ll_w = shapes[(level, "LL")]
            hl_h, hl_w = shapes[(level, "HL")]
            lh_h, lh_w = shapes[(level, "LH")]
            hh_h, hh_w = shapes[(level, "HH")]
            details.append(
                {
                    "HL": matrix[:hl_h, ll_w : ll_w + hl_w].copy(),
                    "LH": matrix[ll_h : ll_h + lh_h, :lh_w].copy(),
                    "HH": matrix[ll_h : ll_h + hh_h, ll_w : ll_w + hh_w].copy(),
                }
            )
        ll_h, ll_w = shapes[(levels, "LL")]
        return cls(
            ll=matrix[:ll_h, :ll_w].copy(),
            details=details,
            shape=(h, w),
            filter_name=filter_name,
        )


def subband_shapes(height: int, width: int, levels: int) -> Dict[Tuple[int, str], Tuple[int, int]]:
    """Shapes of every subband of a ``levels``-deep decomposition.

    Returns a dict keyed ``(level, orient)``; ``(level, "LL")`` is the
    intermediate LL shape after ``level`` decompositions (the final LL for
    ``level == levels``).  Lowpass channels get the ceiling split.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    shapes: Dict[Tuple[int, str], Tuple[int, int]] = {}
    h, w = height, width
    for level in range(1, levels + 1):
        lo_h, hi_h = (h + 1) // 2, h // 2
        lo_w, hi_w = (w + 1) // 2, w // 2
        shapes[(level, "LL")] = (lo_h, lo_w)
        shapes[(level, "HL")] = (lo_h, hi_w)
        shapes[(level, "LH")] = (hi_h, lo_w)
        shapes[(level, "HH")] = (hi_h, hi_w)
        h, w = lo_h, lo_w
    return shapes


def dwt2d(
    image: np.ndarray,
    levels: int,
    filter_name: str = "9/7",
    *,
    n_workers: int = 1,
    backend=None,
    tracer=None,
) -> Subbands:
    """Forward multilevel 2-D DWT.

    Parameters
    ----------
    image:
        ``(H, W)`` array.  Integer for 5/3; any numeric dtype for 9/7.
    levels:
        Number of decomposition levels (paper default: 5).
    filter_name:
        ``"5/3"`` or ``"9/7"``.
    n_workers, backend, tracer:
        When parallelism is requested (``n_workers > 1`` or an explicit
        ``backend``), the transform delegates to
        :func:`repro.core.parallel.parallel_dwt2d` -- the statically
        partitioned sweeps are bit-identical to the serial path on
        every backend, so callers can opt in without numerical risk.
    """
    bank = get_filter(filter_name)
    a = np.asarray(image)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {a.shape}")
    if levels < 0:
        raise ValueError("levels must be non-negative")
    max_levels = _max_levels(a.shape)
    if levels > max_levels:
        raise ValueError(f"{levels} levels exceeds maximum {max_levels} for shape {a.shape}")
    if bank.reversible and not np.issubdtype(a.dtype, np.integer):
        raise TypeError("5/3 transform requires integer input")
    if n_workers > 1 or backend is not None:
        from ..core.parallel import parallel_dwt2d

        return parallel_dwt2d(
            a, levels, filter_name,
            n_workers=n_workers, tracer=tracer, backend=backend,
        )
    details: List[Dict[str, np.ndarray]] = []
    current = a if bank.reversible else np.asarray(a, dtype=np.float64)
    for _ in range(levels):
        # Vertical filtering: along columns (axis 0).
        low_v, high_v = dwt1d(current, bank)
        # Horizontal filtering: along rows (axis 1), via transpose.
        ll, hl = (b.T for b in dwt1d(low_v.T, bank))
        lh, hh = (b.T for b in dwt1d(high_v.T, bank))
        details.append({"HL": np.ascontiguousarray(hl), "LH": np.ascontiguousarray(lh), "HH": np.ascontiguousarray(hh)})
        current = np.ascontiguousarray(ll)
    return Subbands(ll=current, details=details, shape=a.shape, filter_name=filter_name)


def idwt2d(
    subbands: Subbands,
    *,
    n_workers: int = 1,
    backend=None,
    tracer=None,
) -> np.ndarray:
    """Inverse multilevel 2-D DWT (bit-exact for 5/3 integer input).

    ``n_workers``/``backend``/``tracer`` opt into the statically
    partitioned parallel sweeps of
    :func:`repro.core.parallel.parallel_idwt2d` (bit-identical results
    on every backend).
    """
    if n_workers > 1 or backend is not None:
        from ..core.parallel import parallel_idwt2d

        return parallel_idwt2d(
            subbands, n_workers=n_workers, tracer=tracer, backend=backend
        )
    bank = get_filter(subbands.filter_name)
    current = subbands.ll
    for level in range(subbands.levels, 0, -1):
        bands = subbands.details[level - 1]
        hl, lh, hh = bands["HL"], bands["LH"], bands["HH"]
        low_v = idwt1d(current.T, hl.T, bank).T
        high_v = idwt1d(lh.T, hh.T, bank).T
        current = idwt1d(low_v, high_v, bank)
    return current


def _max_levels(shape: Tuple[int, int]) -> int:
    """Deepest decomposition such that every level has >= 1 row and column."""
    n = min(shape)
    levels = 0
    while n > 1:
        n = (n + 1) // 2
        levels += 1
    return levels


@lru_cache(maxsize=None)
def synthesis_energy_gain(filter_name: str, level: int, orient: str) -> float:
    """Squared L2 norm of the synthesis basis functions of one subband.

    This is the factor by which unit quantization noise in a subband
    inflates image-domain MSE; the PCRD rate allocator weights per-pass
    distortion estimates with it.  Computed empirically: synthesize a
    unit impulse placed in the subband and measure the image-domain energy
    (averaged over a few impulse positions to smooth phase effects), which
    keeps the value exactly consistent with this implementation's lifting
    normalization.
    """
    from .filters import FILTER_5_3_FLOAT, FILTER_9_7

    if level == 0:
        # Zero-level decomposition: the "LL band" is the image itself.
        if orient != "LL":
            raise ValueError("level 0 has only the LL band")
        return 1.0
    bank = FILTER_9_7 if filter_name in ("9/7", "97") else FILTER_5_3_FLOAT
    size = 1 << (level + 4)  # comfortably larger than the filter support
    shapes = subband_shapes(size, size, level)
    energies = []
    for offset in (0, 1):
        details = []
        for lev in range(1, level + 1):
            details.append(
                {o: np.zeros(shapes[(lev, o)], dtype=np.float64) for o in _ORIENTS}
            )
        ll = np.zeros(shapes[(level, "LL")], dtype=np.float64)
        target = ll if orient == "LL" else details[level - 1][orient]
        pos = (target.shape[0] // 2 + offset, target.shape[1] // 2 + offset)
        target[pos] = 1.0
        sb = Subbands(ll=ll, details=details, shape=(size, size), filter_name=bank.name)
        rec = idwt2d(sb)
        energies.append(float(np.sum(rec * rec)))
    return float(np.mean(energies))
