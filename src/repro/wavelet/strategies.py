"""Vertical-filtering execution strategies (Sec. 3.2 of the paper).

The three strategies compute **identical coefficients** (verified in the
test suite via :func:`filter_columns_chunked`); what differs is the order
in which memory is touched:

``NAIVE``
    Column-at-a-time vertical lifting, exactly as in the original JJ2000 /
    Jasper code.  On a row-major image whose width (= row stride) is a
    power of two, consecutive samples of one column are ``W * elem_size``
    bytes apart; when that stride is a multiple of ``num_sets *
    line_size``, *every* sample of the column maps into a single cache
    set, and a filter longer than the associativity evicts its own
    working set on every tap -- the paper's "enormous amount of cache
    misses".

``AGGREGATED``
    The paper's fix: several adjacent columns (one cache line's worth) are
    filtered concurrently within a single processor, so each line fill is
    reused by every column sharing the line.  Misses drop by roughly the
    aggregation factor and, crucially, the shared-bus pressure disappears.

``PADDED``
    The paper's first (rejected) alternative: pad the image width off the
    power of two so consecutive column samples land in different cache
    sets.  Helps vertically adjacent samples hit, at the cost of wasted
    memory and still one fill per line actually used.

A :class:`FilterPlan` is pure geometry -- it records, for every 1-D sweep
of a multilevel decomposition, the array extent, strides and aggregation
width.  :mod:`repro.cachesim` turns plans into address traces / analytic
miss counts, and :mod:`repro.perf` turns them into simulated cycles.  The
in-place Mallat convention of the reference codecs is modelled: every
level operates inside the full-resolution buffer, so the *row stride never
shrinks* as levels get coarser (this is why the pathology persists across
levels).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

import numpy as np

from .filters import FilterBank
from .lifting import dwt1d

__all__ = [
    "VerticalStrategy",
    "Sweep",
    "FilterPlan",
    "plan_vertical_filter",
    "plan_horizontal_filter",
    "plan_dwt2d",
    "filter_columns_chunked",
]


class VerticalStrategy(enum.Enum):
    """Memory-access strategy for vertical (column) filtering."""

    NAIVE = "naive"
    AGGREGATED = "aggregated"
    PADDED = "padded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Sweep:
    """One 1-D filtering sweep over a 2-D region.

    Attributes
    ----------
    level:
        Decomposition level (1 = finest).
    direction:
        ``"vertical"`` (filter along columns) or ``"horizontal"``.
    n_along:
        Samples per filtered line (rows for vertical, columns for
        horizontal sweeps).
    n_lines:
        Number of independent lines filtered (columns for vertical
        sweeps).
    elem_size:
        Bytes per sample (4 for float32 Jasper buffers, 8 for float64).
    row_stride_bytes:
        Distance between vertically adjacent samples in memory.  Constant
        across levels for the in-place transform.
    aggregation:
        Number of adjacent lines filtered concurrently by one processor
        (1 for naive; a cache line's worth for the aggregated strategy).
    ops_per_sample:
        Arithmetic per input sample (from the filter bank).
    """

    level: int
    direction: str
    n_along: int
    n_lines: int
    elem_size: int
    row_stride_bytes: int
    aggregation: int
    ops_per_sample: int

    @property
    def samples(self) -> int:
        """Total samples touched by the sweep."""
        return self.n_along * self.n_lines

    @property
    def ops(self) -> int:
        """Arithmetic operations performed by the sweep."""
        return self.samples * self.ops_per_sample

    @property
    def column_stride_bytes(self) -> int:
        """Stride between consecutive samples of a filtered line."""
        if self.direction == "vertical":
            return self.row_stride_bytes
        return self.elem_size


@dataclass(frozen=True)
class FilterPlan:
    """The complete sweep schedule of one multilevel 2-D DWT."""

    height: int
    width: int
    levels: int
    strategy: VerticalStrategy
    sweeps: Tuple[Sweep, ...]

    def vertical_sweeps(self) -> Tuple[Sweep, ...]:
        return tuple(s for s in self.sweeps if s.direction == "vertical")

    def horizontal_sweeps(self) -> Tuple[Sweep, ...]:
        return tuple(s for s in self.sweeps if s.direction == "horizontal")

    @property
    def total_ops(self) -> int:
        return sum(s.ops for s in self.sweeps)


def _padded_width(width: int, elem_size: int, line_size: int = 32) -> int:
    """Width after the PADDED strategy's dummy-column insertion.

    Adds one cache line worth of dummy samples plus one extra element so
    the row stride is neither a power of two nor line-aligned with the
    set period -- the paper's "image width is forced to be not a
    power-of-two (e.g. by inserting dummy data)".
    """
    pad = line_size // elem_size + 1
    return width + pad


def plan_vertical_filter(
    height: int,
    width: int,
    level: int,
    bank: FilterBank,
    strategy: VerticalStrategy = VerticalStrategy.NAIVE,
    elem_size: int = 4,
    line_size: int = 32,
) -> Sweep:
    """Plan the vertical sweep of decomposition level ``level``.

    The region filtered at level ``l`` is the LL band of level ``l-1``:
    ``ceil(H / 2**(l-1)) x ceil(W / 2**(l-1))`` samples, living inside the
    full-resolution buffer (row stride = full image width).
    """
    sub_h = -(-height // (1 << (level - 1)))
    sub_w = -(-width // (1 << (level - 1)))
    stride_width = width if strategy is not VerticalStrategy.PADDED else _padded_width(width, elem_size, line_size)
    aggregation = 1
    if strategy is VerticalStrategy.AGGREGATED:
        aggregation = max(1, line_size // elem_size)
    return Sweep(
        level=level,
        direction="vertical",
        n_along=sub_h,
        n_lines=sub_w,
        elem_size=elem_size,
        row_stride_bytes=stride_width * elem_size,
        aggregation=aggregation,
        ops_per_sample=bank.ops_per_sample,
    )


def plan_horizontal_filter(
    height: int,
    width: int,
    level: int,
    bank: FilterBank,
    strategy: VerticalStrategy = VerticalStrategy.NAIVE,
    elem_size: int = 4,
    line_size: int = 32,
) -> Sweep:
    """Plan the horizontal sweep of decomposition level ``level``.

    Horizontal filtering walks memory sequentially, so its behaviour is
    strategy-independent (aggregation only applies to the vertical
    direction); the row stride matters only for the PADDED variant's
    larger buffer.
    """
    sub_h = -(-height // (1 << (level - 1)))
    sub_w = -(-width // (1 << (level - 1)))
    stride_width = width if strategy is not VerticalStrategy.PADDED else _padded_width(width, elem_size, line_size)
    return Sweep(
        level=level,
        direction="horizontal",
        n_along=sub_w,
        n_lines=sub_h,
        elem_size=elem_size,
        row_stride_bytes=stride_width * elem_size,
        aggregation=1,
        ops_per_sample=bank.ops_per_sample,
    )


def plan_dwt2d(
    height: int,
    width: int,
    levels: int,
    bank: FilterBank,
    strategy: VerticalStrategy = VerticalStrategy.NAIVE,
    elem_size: int = 4,
    line_size: int = 32,
) -> FilterPlan:
    """Plan every sweep of a ``levels``-deep decomposition.

    Per level: one vertical sweep then one horizontal sweep (the paper's
    synchronization point between the two is modelled as a barrier by
    :mod:`repro.smp`).
    """
    sweeps: List[Sweep] = []
    for level in range(1, levels + 1):
        sweeps.append(
            plan_vertical_filter(height, width, level, bank, strategy, elem_size, line_size)
        )
        sweeps.append(
            plan_horizontal_filter(height, width, level, bank, strategy, elem_size, line_size)
        )
    return FilterPlan(
        height=height, width=width, levels=levels, strategy=strategy, sweeps=tuple(sweeps)
    )


def filter_columns_chunked(
    x: np.ndarray, bank: FilterBank, chunk: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vertical lifting performed ``chunk`` columns at a time.

    Numerically identical to ``dwt1d(x, bank)`` -- this is the executable
    witness that the paper's aggregated-columns strategy is a pure memory
    reordering with no effect on the coefficients.  ``chunk=1`` is the
    naive column-at-a-time order.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    n, m = x.shape
    n_low, n_high = (n + 1) // 2, n // 2
    low = np.empty((n_low, m), dtype=np.int64 if bank.reversible else np.float64)
    high = np.empty((n_high, m), dtype=low.dtype)
    for start in range(0, m, chunk):
        sl = slice(start, min(start + chunk, m))
        lo, hi = dwt1d(x[:, sl], bank)
        low[:, sl] = lo
        high[:, sl] = hi
    return low, high


def iter_column_groups(n_cols: int, aggregation: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` column groups for an aggregated sweep."""
    for start in range(0, n_cols, aggregation):
        yield start, min(start + aggregation, n_cols)
