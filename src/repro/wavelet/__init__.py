"""Wavelet transform engine (JPEG2000 part-1 filters, built from scratch).

Implements the two JPEG2000 wavelet transforms in lifting form:

- the reversible integer **5/3** (LeGall) transform used for lossless
  coding, and
- the irreversible floating-point **9/7** (CDF / Daubechies) transform the
  paper uses as the JPEG2000 default ("five-level wavelet decomposition
  with 7/9-biorthogonal filters").

The 2-D transform follows the Mallat decomposition: at every level the
columns are filtered (**vertical filtering**) and the rows are filtered
(**horizontal filtering**), then the LL band recurses.  The paper's central
observation is that on a row-major image whose width is a power of two,
vertical filtering walks memory with a stride that maps entire columns into
a single cache set -- :mod:`repro.cachesim` models exactly that, and
:mod:`repro.wavelet.strategies` describes the three memory-access
strategies the paper compares (naive column-at-a-time, the paper's
aggregated-columns fix, and width padding).

Public API
----------
- :func:`dwt1d` / :func:`idwt1d` -- one lifting stage along an axis.
- :func:`dwt2d` / :func:`idwt2d` -- multilevel 2-D transform.
- :class:`Subbands` -- decomposition container with Mallat-matrix packing.
- :class:`FilterBank` -- filter parameters (``FILTER_5_3``, ``FILTER_9_7``).
- :mod:`strategies` -- vertical-filtering execution plans + op accounting.
"""

from .filters import FILTER_5_3, FILTER_9_7, FilterBank, get_filter
from .lifting import dwt1d, idwt1d
from .dwt2d import Subbands, dwt2d, idwt2d, subband_shapes, synthesis_energy_gain
from .strategies import (
    VerticalStrategy,
    FilterPlan,
    plan_vertical_filter,
    plan_horizontal_filter,
    filter_columns_chunked,
)

__all__ = [
    "FILTER_5_3",
    "FILTER_9_7",
    "FilterBank",
    "get_filter",
    "dwt1d",
    "idwt1d",
    "Subbands",
    "dwt2d",
    "idwt2d",
    "subband_shapes",
    "synthesis_energy_gain",
    "VerticalStrategy",
    "FilterPlan",
    "plan_vertical_filter",
    "plan_horizontal_filter",
    "filter_columns_chunked",
]
