"""`CodecClient`: the resilient half of the exactly-once wire protocol.

The server answers every *admitted* request exactly once; this client
closes the loop from the other side so the **caller** sees exactly one
result per logical request even when the network between them lies:

* every request carries a client-generated **idempotency key** (and
  reuses it, and the same wire ``id``, across attempts) -- a retry of a
  request the server already ran is answered from the server's replay
  cache instead of re-executing tier-1 coding;
* **bounded retries** with exponential backoff and *full jitter*
  (``delay ~ U(0, min(max, base * 2^attempt))``), deterministic when a
  ``jitter_seed`` is given so chaos soaks replay bit-for-bit;
* **deadline propagation**: a relative budget at ``request()`` becomes
  an absolute client-side deadline; every attempt ships the *remaining*
  budget on the wire (so server-side admission expires it consistently)
  and backoff sleeps never outlive the budget;
* **automatic reconnect** with a generation counter so concurrent
  requests racing into a dead connection rebuild it once, not N times;
* a **closed/open/half-open circuit breaker**: ``failure_threshold``
  consecutive transport failures open it, ``reset_timeout`` later one
  half-open probe is let through, success closes it again.  While open
  the client *waits* (budget permitting) instead of hammering a dead
  endpoint.

Transport failures (connect errors, dropped connections, timed-out
replies, replies flagged ``retryable`` -- the server marks wire-level
parse errors so) are retried; deterministic verdicts (``ok``, codec
``error``, ``deadline`` sheds) return immediately.  ``queue-full`` and
``shutdown`` sheds are retried with backoff -- overload is transient by
definition -- and surface as the last ``Rejected`` once attempts run
out.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..codec import CodecParams
from .admission import DEADLINE, QUEUE_FULL, SHUTDOWN, Completed, Failed, Rejected
from .server import image_from_wire, image_to_wire

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "ClientStats",
    "CodecClient",
    "RetriesExhausted",
    "RetryPolicy",
    "params_to_wire",
    "reply_to_result",
]

#: StreamReader buffer limit for replies (decode replies carry images).
_REPLY_LIMIT = 1 << 23
#: Poll floor while parked behind an open breaker whose half-open probe
#: is already taken by a sibling request.
_BREAKER_POLL = 0.005


class RetriesExhausted(ConnectionError):
    """Every attempt failed on transport; carries the last cause."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries: exponential backoff, full jitter, attempt cap.

    ``attempt_timeout`` bounds how long one attempt waits for its reply
    (further capped by the request's remaining deadline); ``None``
    waits forever (deadline permitting).  ``jitter_seed`` pins the
    jitter RNG for deterministic tests; ``None`` draws a fresh seed.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    attempt_timeout: Optional[float] = 10.0
    jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive (or None)")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter delay before retry ``attempt`` (0-based)."""
        cap = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return rng.uniform(0.0, cap)


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit breaker shape: trip threshold and recovery probing."""

    failure_threshold: int = 5
    reset_timeout: float = 1.0
    half_open_max: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")


class CircuitBreaker:
    """Closed -> open -> half-open state machine over a shared clock.

    Pure bookkeeping (no sleeping, no I/O): ``allow()`` answers "may an
    attempt go out right now", the owner reports outcomes through
    ``record_success``/``record_failure``.  Consecutive failures trip
    it; after ``reset_timeout`` the next ``allow()`` flips to half-open
    and admits up to ``half_open_max`` probes; one success closes, one
    failure re-opens.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: Optional[BreakerPolicy] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.opens = 0
        self._opened_at = 0.0
        self._probes = 0

    def allow(self) -> bool:
        if self.state == self.OPEN:
            if self.clock() - self._opened_at < self.policy.reset_timeout:
                return False
            self.state = self.HALF_OPEN
            self._probes = 0
        if self.state == self.HALF_OPEN:
            if self._probes >= self.policy.half_open_max:
                return False
            self._probes += 1
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self._probes = 0

    def record_failure(self) -> None:
        if self.state == self.OPEN:
            return  # already open; don't extend the timeout
        self.failures += 1
        if self.state == self.HALF_OPEN or \
                self.failures >= self.policy.failure_threshold:
            self.state = self.OPEN
            self.opens += 1
            self._opened_at = self.clock()
            self.failures = 0

    def time_until_half_open(self) -> float:
        if self.state != self.OPEN:
            return 0.0
        return max(
            0.0,
            self.policy.reset_timeout - (self.clock() - self._opened_at),
        )


@dataclass
class ClientStats:
    """What resilience cost: attempts, retries, reconnects, replays."""

    requests: int = 0
    attempts: int = 0
    retries: int = 0
    connects: int = 0
    reconnects: int = 0
    replay_hits: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    breaker_waits: int = 0
    backoff_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests, "attempts": self.attempts,
            "retries": self.retries, "connects": self.connects,
            "reconnects": self.reconnects, "replay_hits": self.replay_hits,
            "timeouts": self.timeouts,
            "protocol_errors": self.protocol_errors,
            "breaker_waits": self.breaker_waits,
            "backoff_seconds": round(self.backoff_seconds, 6),
        }


class _Connection:
    """One live socket + reader task + id-keyed pending futures."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Dict[Any, asyncio.Future] = {}
        self.closed = False
        self.task: Optional[asyncio.Task] = None

    def register(self, rid: Any) -> asyncio.Future:
        stale = self.pending.get(rid)
        if stale is not None and not stale.done():
            stale.cancel()
        fut = asyncio.get_running_loop().create_future()
        self.pending[rid] = fut
        return fut

    async def read_loop(self, on_protocol_error: Callable[[], None]) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                except (ValueError, UnicodeDecodeError):
                    on_protocol_error()
                    continue
                if not isinstance(msg, dict):
                    on_protocol_error()
                    continue
                fut = self.pending.pop(msg.get("id"), None)
                if fut is None and msg.get("id") is None and \
                        msg.get("status") == "error" and len(self.pending) == 1:
                    # A wire-level error reply lost its id (the frame it
                    # answers was mangled in transit).  With exactly one
                    # request in flight it can only concern that one --
                    # deliver it so the retry starts now, not at the
                    # attempt timeout.
                    fut = self.pending.pop(next(iter(self.pending)))
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except (ConnectionError, OSError):
            pass  # torn connection: pending futures fail below
        except ValueError:
            on_protocol_error()  # oversized reply frame; drop the conn
        finally:
            self.closed = True
            error = ConnectionError("connection closed")
            for fut in self.pending.values():
                if not fut.done():
                    fut.set_exception(error)
            self.pending.clear()
            self.writer.close()

    async def close(self) -> None:
        self.closed = True
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer beat us to it
        if self.task is not None:
            await self.task


class CodecClient:
    """Exactly-once client for the TCP/JSON-lines codec server."""

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Any] = asyncio.sleep,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.breaker = CircuitBreaker(breaker, clock=clock)
        self.clock = clock
        self.stats = ClientStats()
        self._sleep = sleep
        self._rng = random.Random(
            self.retry.jitter_seed
            if self.retry.jitter_seed is not None
            else int.from_bytes(os.urandom(8), "big")
        )
        self._client_id = client_id or os.urandom(4).hex()
        self._seq = itertools.count(1)
        self._conn: Optional[_Connection] = None
        self._conn_lock = asyncio.Lock()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def connect(self) -> "CodecClient":
        """Eagerly open the connection (``request`` also does, lazily)."""
        await self._ensure_connected()
        return self

    async def close(self) -> None:
        self._closed = True
        conn, self._conn = self._conn, None
        if conn is not None:
            await conn.close()

    async def __aenter__(self) -> "CodecClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def stats_dict(self) -> Dict[str, Any]:
        out = self.stats.to_dict()
        out["breaker_opens"] = self.breaker.opens
        out["breaker_state"] = self.breaker.state
        return out

    # -- public request API --------------------------------------------------

    async def encode(self, image, params: Optional[CodecParams] = None,
                     deadline: Optional[float] = None):
        return await self.request("encode", image, params, deadline=deadline)

    async def decode(self, data: bytes, params: Any = None,
                     deadline: Optional[float] = None):
        return await self.request("decode", data, params, deadline=deadline)

    async def ping(self, deadline: Optional[float] = None) -> bool:
        result = await self.request("ping", None, None, deadline=deadline)
        return isinstance(result, Completed)

    async def request(self, op: str, payload: Any, params: Any = None,
                      deadline: Optional[float] = None):
        """One logical request -> one result, however many attempts.

        Returns the in-process result types (:class:`Completed` /
        :class:`Rejected` / :class:`Failed`); transport exhaustion is a
        ``Failed(RetriesExhausted)`` unless the last word from the
        server was an explicit shed, which is returned as-is.
        """
        if op not in ("encode", "decode", "ping"):
            raise ValueError(f"op must be encode/decode/ping, not {op!r}")
        self.stats.requests += 1
        key = f"{self._client_id}-{next(self._seq)}"
        msg = self._wire_message(key, op, payload, params)
        abs_deadline = None if deadline is None else self.clock() + deadline
        last_failure: Any = None
        last_shed: Optional[Rejected] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.stats.retries += 1
            remaining = self._remaining(abs_deadline)
            if remaining is not None and remaining <= 0:
                return Rejected(
                    DEADLINE,
                    f"client budget exhausted after {attempt} attempt(s)",
                )
            if not await self._breaker_gate(abs_deadline):
                return Rejected(
                    DEADLINE,
                    "client budget exhausted waiting for the circuit "
                    "breaker to close",
                )
            remaining = self._remaining(abs_deadline)
            if remaining is not None:
                msg["deadline"] = remaining
            msg["attempt"] = attempt
            self.stats.attempts += 1
            try:
                reply = await self._attempt(msg, remaining)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                self.breaker.record_failure()
                last_failure = TimeoutError(
                    f"no reply within the attempt timeout (attempt {attempt})"
                )
                await self._backoff(attempt, abs_deadline)
                continue
            except (ConnectionError, OSError) as exc:
                self.breaker.record_failure()
                last_failure = exc
                await self._backoff(attempt, abs_deadline)
                continue
            if reply.get("replayed"):
                self.stats.replay_hits += 1
            status = reply.get("status")
            if status == "rejected":
                reason = reply.get("reason", "?")
                if reason in (QUEUE_FULL, SHUTDOWN):
                    # The server is alive and explicit: back off, retry.
                    self.breaker.record_success()
                    last_shed = Rejected(reason, reply.get("detail", ""))
                    last_failure = None
                    await self._backoff(attempt, abs_deadline)
                    continue
                self.breaker.record_success()
                return reply_to_result(op, reply)
            if status == "error" and reply.get("retryable"):
                # Wire-level damage (unparseable frame, oversized frame
                # mid-chaos): the payload may arrive intact next time.
                self.breaker.record_failure()
                self.stats.protocol_errors += 1
                last_failure = RuntimeError(reply.get("error", "wire error"))
                await self._backoff(attempt, abs_deadline)
                continue
            self.breaker.record_success()
            return reply_to_result(op, reply)
        if last_shed is not None and last_failure is None:
            return last_shed
        return Failed(RetriesExhausted(
            f"{op} failed after {self.retry.max_attempts} attempt(s): "
            f"{type(last_failure).__name__}: {last_failure}"
        ))

    # -- attempt machinery ---------------------------------------------------

    def _wire_message(self, key: str, op: str, payload: Any,
                      params: Any) -> Dict[str, Any]:
        msg: Dict[str, Any] = {"id": key, "op": op, "idem": key}
        if op == "encode":
            msg["image"] = image_to_wire(payload)
            msg["params"] = params_to_wire(params)
        elif op == "decode":
            msg["data_b64"] = base64.b64encode(payload).decode("ascii")
            if isinstance(params, dict) and params.get("max_layer") is not None:
                msg["max_layer"] = int(params["max_layer"])
        return msg

    def _remaining(self, abs_deadline: Optional[float]) -> Optional[float]:
        if abs_deadline is None:
            return None
        return abs_deadline - self.clock()

    async def _attempt(self, msg: Dict[str, Any],
                       remaining: Optional[float]) -> Dict[str, Any]:
        conn = await self._ensure_connected()
        fut = conn.register(msg["id"])
        try:
            conn.writer.write(json.dumps(msg).encode("utf-8") + b"\n")
            await conn.writer.drain()
        except (ConnectionError, OSError):
            conn.pending.pop(msg["id"], None)
            raise
        timeout = self.retry.attempt_timeout
        if remaining is not None:
            timeout = remaining if timeout is None else min(timeout, remaining)
        try:
            return await asyncio.wait_for(fut, timeout)
        finally:
            conn.pending.pop(msg["id"], None)

    async def _ensure_connected(self) -> _Connection:
        if self._closed:
            raise ConnectionError("client is closed")
        async with self._conn_lock:
            conn = self._conn
            if conn is not None and not conn.closed:
                return conn
            if conn is None:
                self.stats.connects += 1
            else:
                self.stats.reconnects += 1
            reader, writer = await asyncio.open_connection(
                self.host, self.port, limit=_REPLY_LIMIT
            )
            conn = _Connection(reader, writer)
            conn.task = asyncio.ensure_future(
                conn.read_loop(self._on_protocol_error)
            )
            self._conn = conn
            return conn

    def _on_protocol_error(self) -> None:
        self.stats.protocol_errors += 1

    async def _backoff(self, attempt: int,
                       abs_deadline: Optional[float]) -> None:
        if attempt + 1 >= self.retry.max_attempts:
            return  # no attempt follows; don't burn budget sleeping
        delay = self.retry.backoff(attempt, self._rng)
        remaining = self._remaining(abs_deadline)
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        if delay > 0:
            self.stats.backoff_seconds += delay
            await self._sleep(delay)

    async def _breaker_gate(self, abs_deadline: Optional[float]) -> bool:
        """Park until the breaker admits an attempt; ``False`` when the
        deadline dies first."""
        while not self.breaker.allow():
            wait = max(self.breaker.time_until_half_open(), _BREAKER_POLL)
            remaining = self._remaining(abs_deadline)
            if remaining is not None:
                if remaining <= 0:
                    return False
                wait = min(wait, remaining)
            self.stats.breaker_waits += 1
            await self._sleep(wait)
        return True


# ---------------------------------------------------------------------------
# Wire encoding helpers shared with the load generator.
# ---------------------------------------------------------------------------


def params_to_wire(params: Optional[CodecParams]) -> Dict[str, Any]:
    if params is None:
        return {}
    return {
        "levels": params.levels,
        "filter_name": params.filter_name,
        "cb_size": params.cb_size,
        "base_step": params.base_step,
        "target_bpp": list(params.target_bpp) if params.target_bpp else None,
        "tile_size": params.tile_size,
        "bit_depth": params.bit_depth,
        "resilience": params.resilience,
    }


def reply_to_result(op: str, reply: Dict[str, Any]):
    """Lift a wire reply back into the in-process result types."""
    status = reply.get("status")
    if status == "ok":
        if op == "ping":
            value: Any = True
        elif op == "encode":
            value = base64.b64decode(reply["data_b64"])
        else:
            value = image_from_wire(reply["image"])
        return Completed(
            value,
            queue_wait=float(reply.get("queue_wait", 0.0)),
            service_seconds=float(reply.get("service", 0.0)),
            batch_size=int(reply.get("batch_size", 1)),
        )
    if status == "rejected":
        return Rejected(reply.get("reason", "?"), reply.get("detail", ""))
    return Failed(RuntimeError(reply.get("error", "unknown server error")))
