"""Deterministic open-loop load generator for the codec server.

Open-loop means arrivals follow the schedule, not the server: request
``i`` is launched at ``i / rate`` seconds after the run starts whether
or not earlier requests have been answered, so an overloaded server
shows up as queue growth and sheds (exactly what admission control is
for) instead of the generator politely slowing down.

Everything that decides *what* is sent is seeded and precomputed:
:class:`Workload` builds ``n_images`` synthetic inputs and their
direct-call reference results up front, so every reply can be checked
byte-for-byte against what ``encode_image``/``decode_image`` would have
produced without the server in the way.  The wall-clock side (actual
arrival jitter, latencies) is real time by nature -- the deterministic
soak tests in ``tests/test_serve.py`` instead drive the admission and
batching layers with fake clocks.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..codec import CodecParams, decode_image, encode_image
from ..image import SyntheticSpec, synthetic_image
from .admission import Completed, Failed, Rejected
from .report import LoadReport, LoadSample
from .server import CodecServer, image_from_wire, image_to_wire

__all__ = [
    "InProcessTarget",
    "LoadSpec",
    "TcpTarget",
    "Workload",
    "arrival_offsets",
    "run_load",
]


@dataclass(frozen=True)
class LoadSpec:
    """One load run: open-loop arrivals at ``rate`` req/s for
    ``duration`` seconds, cycling over ``n_images`` seeded inputs."""

    rate: float = 50.0
    duration: float = 5.0
    op: str = "encode"  # "encode" | "decode"
    side: int = 32
    n_images: int = 4
    seed: int = 0
    deadline: Optional[float] = None  # relative budget per request
    levels: int = 2
    cb_size: int = 16

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.op not in ("encode", "decode"):
            raise ValueError(f"op must be 'encode' or 'decode', not {self.op!r}")
        if self.n_images < 1:
            raise ValueError("need at least one image")

    @property
    def n_requests(self) -> int:
        return max(1, int(round(self.rate * self.duration)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate, "duration": self.duration, "op": self.op,
            "side": self.side, "n_images": self.n_images, "seed": self.seed,
            "deadline": self.deadline, "levels": self.levels,
            "cb_size": self.cb_size, "n_requests": self.n_requests,
        }


def arrival_offsets(spec: LoadSpec) -> List[float]:
    """Deterministic arrival schedule: request ``i`` at ``i/rate`` s."""
    return [i / spec.rate for i in range(spec.n_requests)]


class Workload:
    """Seeded inputs plus their direct-call reference results.

    The references are the byte-identity oracle: a served encode must
    equal ``encode_image(image, params).data`` exactly, a served decode
    must equal ``decode_image(encoded)`` array-for-array.
    """

    def __init__(self, spec: LoadSpec) -> None:
        self.spec = spec
        self.params = CodecParams(
            levels=spec.levels, cb_size=spec.cb_size, base_step=1 / 64
        )
        self.images = [
            synthetic_image(
                SyntheticSpec(spec.side, spec.side, "mix", seed=spec.seed + i)
            )
            for i in range(spec.n_images)
        ]
        self.encoded = [
            encode_image(img, self.params).data for img in self.images
        ]
        self.decoded = (
            [decode_image(data) for data in self.encoded]
            if spec.op == "decode" else []
        )

    def payload(self, i: int) -> Tuple[Any, Any]:
        """(payload, params) for request ``i`` (round-robin inputs)."""
        j = i % self.spec.n_images
        if self.spec.op == "encode":
            return self.images[j], self.params
        return self.encoded[j], {}

    def matches(self, i: int, value: Any) -> bool:
        """Is ``value`` byte/array-identical to the direct-call result?"""
        j = i % self.spec.n_images
        if self.spec.op == "encode":
            return value == self.encoded[j]
        return bool(np.array_equal(value, self.decoded[j]))


class InProcessTarget:
    """Drive a :class:`CodecServer` through its ``submit()`` API."""

    def __init__(self, server: CodecServer) -> None:
        self.server = server

    async def request(self, op: str, payload: Any, params: Any,
                      deadline: Optional[float]):
        return await self.server.submit(op, payload, params, deadline=deadline)

    async def close(self) -> None:
        pass


class TcpTarget:
    """Drive a server's TCP front door over one JSON-lines connection.

    Replies are matched to requests by ``id`` (the protocol interleaves
    freely), so one connection carries the whole open-loop run.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader: Optional[asyncio.StreamReader] = None

    async def open(self) -> "TcpTarget":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                msg = json.loads(line)
                fut = self._pending.pop(msg.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except (ConnectionError, OSError):
            pass  # connection dropped; pending futures fail below
        finally:
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, payload: Any, params: Any,
                      deadline: Optional[float]):
        rid = next(self._ids)
        msg: Dict[str, Any] = {"id": rid, "op": op}
        if op == "encode":
            msg["image"] = image_to_wire(payload)
            msg["params"] = params_to_wire(params)
        else:
            msg["data_b64"] = base64.b64encode(payload).decode("ascii")
        if deadline is not None:
            msg["deadline"] = deadline
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(json.dumps(msg).encode("utf-8") + b"\n")
        await self._writer.drain()
        reply = await fut
        return reply_to_result(op, reply)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # already gone
        if self._reader_task is not None:
            await self._reader_task


def params_to_wire(params: Optional[CodecParams]) -> Dict[str, Any]:
    if params is None:
        return {}
    return {
        "levels": params.levels,
        "filter_name": params.filter_name,
        "cb_size": params.cb_size,
        "base_step": params.base_step,
        "target_bpp": list(params.target_bpp) if params.target_bpp else None,
        "tile_size": params.tile_size,
        "bit_depth": params.bit_depth,
        "resilience": params.resilience,
    }


def reply_to_result(op: str, reply: Dict[str, Any]):
    """Lift a wire reply back into the in-process result types."""
    status = reply.get("status")
    if status == "ok":
        if op == "encode":
            value: Any = base64.b64decode(reply["data_b64"])
        else:
            value = image_from_wire(reply["image"])
        return Completed(
            value,
            queue_wait=float(reply.get("queue_wait", 0.0)),
            service_seconds=float(reply.get("service", 0.0)),
            batch_size=int(reply.get("batch_size", 1)),
        )
    if status == "rejected":
        return Rejected(reply.get("reason", "?"), reply.get("detail", ""))
    return Failed(RuntimeError(reply.get("error", "unknown server error")))


async def run_load(
    target,
    spec: LoadSpec,
    workload: Optional[Workload] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadReport:
    """Run the open-loop schedule against ``target``; report latencies.

    ``target`` is anything with ``request(op, payload, params,
    deadline)`` returning a result object (:class:`InProcessTarget`,
    :class:`TcpTarget`).
    """
    if workload is None:
        workload = Workload(spec)
    offsets = arrival_offsets(spec)
    samples: List[Optional[LoadSample]] = [None] * len(offsets)
    start = clock()

    async def one(i: int) -> None:
        payload, params = workload.payload(i)
        t0 = clock()
        try:
            result = await target.request(spec.op, payload, params,
                                          spec.deadline)
        except Exception as exc:
            result = Failed(exc)
        latency = clock() - t0
        samples[i] = _sample(i, result, latency, workload)

    tasks: List[asyncio.Task] = []
    for i, offset in enumerate(offsets):
        delay = (start + offset) - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(i)))
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = clock() - start
    return LoadReport(spec=spec.to_dict(), samples=list(samples),
                      elapsed=elapsed)


def _sample(i: int, result, latency: float, workload: Workload) -> LoadSample:
    if isinstance(result, Completed):
        return LoadSample(
            index=i, status="ok", latency=latency,
            queue_wait=result.queue_wait, service=result.service_seconds,
            batch_size=result.batch_size,
            mismatch=not workload.matches(i, result.value),
        )
    if isinstance(result, Rejected):
        return LoadSample(index=i, status="rejected", reason=result.reason,
                          latency=latency)
    return LoadSample(index=i, status="error",
                      reason=f"{type(result.error).__name__}: {result.error}",
                      latency=latency)
