"""Deterministic open-loop load generator for the codec server.

Open-loop means arrivals follow the schedule, not the server: request
``i`` is launched at ``i / rate`` seconds after the run starts whether
or not earlier requests have been answered, so an overloaded server
shows up as queue growth and sheds (exactly what admission control is
for) instead of the generator politely slowing down.

Everything that decides *what* is sent is seeded and precomputed:
:class:`Workload` builds ``n_images`` synthetic inputs and their
direct-call reference results up front, so every reply can be checked
byte-for-byte against what ``encode_image``/``decode_image`` would have
produced without the server in the way.  The wall-clock side (actual
arrival jitter, latencies) is real time by nature -- the deterministic
soak tests in ``tests/test_serve.py`` instead drive the admission and
batching layers with fake clocks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..codec import CodecParams, decode_image, encode_image
from ..image import SyntheticSpec, synthetic_image
from .admission import Completed, Failed, Rejected
from .client import (
    BreakerPolicy,
    CodecClient,
    RetryPolicy,
    params_to_wire,
    reply_to_result,
)
from .report import LoadReport, LoadSample
from .server import CodecServer

__all__ = [
    "InProcessTarget",
    "LoadSpec",
    "TcpTarget",
    "Workload",
    "arrival_offsets",
    "run_load",
    "params_to_wire",
    "reply_to_result",
]


@dataclass(frozen=True)
class LoadSpec:
    """One load run: open-loop arrivals at ``rate`` req/s for
    ``duration`` seconds, cycling over ``n_images`` seeded inputs."""

    rate: float = 50.0
    duration: float = 5.0
    op: str = "encode"  # "encode" | "decode"
    side: int = 32
    n_images: int = 4
    seed: int = 0
    deadline: Optional[float] = None  # relative budget per request
    levels: int = 2
    cb_size: int = 16

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.op not in ("encode", "decode"):
            raise ValueError(f"op must be 'encode' or 'decode', not {self.op!r}")
        if self.n_images < 1:
            raise ValueError("need at least one image")

    @property
    def n_requests(self) -> int:
        return max(1, int(round(self.rate * self.duration)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate, "duration": self.duration, "op": self.op,
            "side": self.side, "n_images": self.n_images, "seed": self.seed,
            "deadline": self.deadline, "levels": self.levels,
            "cb_size": self.cb_size, "n_requests": self.n_requests,
        }


def arrival_offsets(spec: LoadSpec) -> List[float]:
    """Deterministic arrival schedule: request ``i`` at ``i/rate`` s."""
    return [i / spec.rate for i in range(spec.n_requests)]


class Workload:
    """Seeded inputs plus their direct-call reference results.

    The references are the byte-identity oracle: a served encode must
    equal ``encode_image(image, params).data`` exactly, a served decode
    must equal ``decode_image(encoded)`` array-for-array.
    """

    def __init__(self, spec: LoadSpec) -> None:
        self.spec = spec
        self.params = CodecParams(
            levels=spec.levels, cb_size=spec.cb_size, base_step=1 / 64
        )
        self.images = [
            synthetic_image(
                SyntheticSpec(spec.side, spec.side, "mix", seed=spec.seed + i)
            )
            for i in range(spec.n_images)
        ]
        self.encoded = [
            encode_image(img, self.params).data for img in self.images
        ]
        self.decoded = (
            [decode_image(data) for data in self.encoded]
            if spec.op == "decode" else []
        )

    def payload(self, i: int) -> Tuple[Any, Any]:
        """(payload, params) for request ``i`` (round-robin inputs)."""
        j = i % self.spec.n_images
        if self.spec.op == "encode":
            return self.images[j], self.params
        return self.encoded[j], {}

    def matches(self, i: int, value: Any) -> bool:
        """Is ``value`` byte/array-identical to the direct-call result?"""
        j = i % self.spec.n_images
        if self.spec.op == "encode":
            return value == self.encoded[j]
        return bool(np.array_equal(value, self.decoded[j]))


class InProcessTarget:
    """Drive a :class:`CodecServer` through its ``submit()`` API."""

    def __init__(self, server: CodecServer) -> None:
        self.server = server

    async def request(self, op: str, payload: Any, params: Any,
                      deadline: Optional[float]):
        return await self.server.submit(op, payload, params, deadline=deadline)

    async def close(self) -> None:
        pass


class TcpTarget:
    """Drive a TCP front door through the resilient :class:`CodecClient`.

    The client brings the exactly-once machinery along -- idempotency
    keys, bounded retries with backoff, reconnect, and the circuit
    breaker -- so ``repro serve bench`` (and the chaos soaks) exercise
    the same code path a production caller would.  Replies are matched
    to requests by ``id``; one client connection carries the whole
    open-loop run, reconnecting as needed.
    """

    def __init__(self, host: str, port: int,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerPolicy] = None) -> None:
        self.client = CodecClient(host, port, retry=retry, breaker=breaker)

    async def open(self) -> "TcpTarget":
        await self.client.connect()
        return self

    async def request(self, op: str, payload: Any, params: Any,
                      deadline: Optional[float]):
        return await self.client.request(op, payload, params,
                                         deadline=deadline)

    def stats_dict(self) -> Dict[str, Any]:
        return self.client.stats_dict()

    async def close(self) -> None:
        await self.client.close()


async def run_load(
    target,
    spec: LoadSpec,
    workload: Optional[Workload] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadReport:
    """Run the open-loop schedule against ``target``; report latencies.

    ``target`` is anything with ``request(op, payload, params,
    deadline)`` returning a result object (:class:`InProcessTarget`,
    :class:`TcpTarget`).
    """
    if workload is None:
        workload = Workload(spec)
    offsets = arrival_offsets(spec)
    samples: List[Optional[LoadSample]] = [None] * len(offsets)
    start = clock()

    async def one(i: int) -> None:
        payload, params = workload.payload(i)
        t0 = clock()
        try:
            result = await target.request(spec.op, payload, params,
                                          spec.deadline)
        except Exception as exc:
            result = Failed(exc)
        latency = clock() - t0
        samples[i] = _sample(i, result, latency, workload)

    tasks: List[asyncio.Task] = []
    for i, offset in enumerate(offsets):
        delay = (start + offset) - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(i)))
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = clock() - start
    stats_dict = getattr(target, "stats_dict", None)
    client = stats_dict() if callable(stats_dict) else None
    return LoadReport(spec=spec.to_dict(), samples=list(samples),
                      elapsed=elapsed, client=client)


def _sample(i: int, result, latency: float, workload: Workload) -> LoadSample:
    if isinstance(result, Completed):
        return LoadSample(
            index=i, status="ok", latency=latency,
            queue_wait=result.queue_wait, service=result.service_seconds,
            batch_size=result.batch_size,
            mismatch=not workload.matches(i, result.value),
        )
    if isinstance(result, Rejected):
        return LoadSample(index=i, status="rejected", reason=result.reason,
                          latency=latency)
    return LoadSample(index=i, status="error",
                      reason=f"{type(result.error).__name__}: {result.error}",
                      latency=latency)
