"""`CodecServer`: asyncio admission-controlled batch codec service.

Request path::

    submit()/TCP line --> AdmissionQueue.offer()   (shed: queue-full,
          |                                         expired, shutdown)
          v
    batcher task: semaphore(pools) permit -> take(max_batch)
          |            (expired-while-queued requests shed here,
          |             in arrival order, before anything runs)
          v
    executor thread: execute_batch() on one checked-out WarmPool
          |            (per-request call_deadline on the supervised
          |             backend; worker death degrades, never drops)
          v
    event loop: _finish_batch() -> futures resolved, metrics counted

The semaphore is sized to the pool count, so when every pool is busy
the batcher stops draining and the admission queue *actually fills* --
that is what turns overload into explicit ``Rejected("queue-full")``
replies instead of an invisible unbounded backlog.  All metric updates
happen on the event loop (the registry's counters are plain ``+=``).

The TCP front door speaks JSON lines: one request object per line in,
one reply object per line out (``id`` echoes back; replies may
interleave across in-flight requests of one connection).  See
``image_to_wire``/``params_from_wire`` for the payload encoding.

Wire robustness (the exactly-once protocol):

* frames are bounded by ``max_frame`` -- an oversized frame is drained
  and answered with an explicit ``frame-too-large`` error while the
  connection stays alive (no more asyncio ``LimitOverrunError``
  killing the socket);
* unparseable frames (corruption, non-UTF-8 bytes) answer an error
  flagged ``retryable`` so a resilient client retries them, while
  deterministic verdicts (codec errors, unknown ops) are not;
* a request carrying an ``idem`` key is routed through the
  :class:`~repro.serve.replay.ReplayCache`: a retry of a finished
  request is answered from the cache (``replayed: true``), a retry of
  an *in-flight* request joins the original execution -- either way
  the codec runs at most once per key within the replay TTL.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..codec import CodecParams
from ..core.supervise import SupervisionPolicy
from .admission import (
    SHED_REASONS,
    AdmissionQueue,
    Completed,
    Failed,
    Rejected,
    Request,
)
from .batching import PoolSet, execute_batch
from .replay import ReplayCache

__all__ = [
    "CodecServer",
    "ServeConfig",
    "image_from_wire",
    "image_to_wire",
    "params_from_wire",
    "wire_reply",
]

#: Latency-flavoured histogram buckets (seconds).
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Socket read granularity for the manually framed TCP front door.
_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class ServeConfig:
    """Server shape: pools, admission limits, batching knobs.

    ``default_deadline`` (seconds, relative) applies to requests that
    do not bring their own; ``batch_window`` is how long the batcher
    waits for stragglers once it holds a pool and the queue is shorter
    than ``max_batch`` (0 = dispatch immediately).

    Wire-protocol knobs: ``max_frame`` bounds one JSON-lines frame
    (oversized frames answer ``frame-too-large`` without killing the
    connection); ``replay_ttl``/``replay_cap`` bound the idempotent
    replay cache; ``track_executions`` keeps per-key execution counts
    on the cache (test/diagnostic only -- the dict grows with the key
    space).
    """

    backend: str = "threads"
    workers: int = 2
    pools: int = 1
    queue_depth: int = 64
    max_batch: int = 4
    batch_window: float = 0.0
    default_deadline: Optional[float] = None
    supervision: Optional[SupervisionPolicy] = None
    max_frame: int = 1 << 23
    replay_ttl: float = 60.0
    replay_cap: int = 1024
    track_executions: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.pools < 1:
            raise ValueError("pools must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        if self.max_frame < 1024:
            raise ValueError("max_frame must be >= 1024 bytes")
        if self.replay_ttl <= 0:
            raise ValueError("replay_ttl must be positive")
        if self.replay_cap < 1:
            raise ValueError("replay_cap must be >= 1")


class CodecServer:
    """Admission-controlled batching front-end over warm codec pools."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        metrics=None,
        tracer=None,
        clock: Callable[[], float] = time.monotonic,
        wrap_backend=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics
        self.tracer = tracer
        self.clock = clock
        self.wrap_backend = wrap_backend
        self.queue = AdmissionQueue(self.config.queue_depth, clock=clock)
        self.replay = ReplayCache(
            cap=self.config.replay_cap, ttl=self.config.replay_ttl,
            clock=clock, track_executions=self.config.track_executions,
        )
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pools: Optional[PoolSet] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._arrived: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._tcp_servers: List[asyncio.AbstractServer] = []
        self._stopping = False
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._pools = PoolSet(
            cfg.backend, cfg.workers, cfg.pools,
            policy=cfg.supervision, metrics=self.metrics,
            clock=self.clock, wrap=self.wrap_backend,
        )
        self._slots = asyncio.Semaphore(cfg.pools)
        self._arrived = asyncio.Event()
        self._stopping = False
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started = True

    async def stop(self) -> None:
        """Drain and shut down: queued requests answer ``shutdown``,
        in-flight batches finish normally, pools close."""
        if not self._started:
            return
        self._stopping = True
        drained = self.queue.close()
        for req, rejection in drained:
            self._resolve(req, rejection)
        self._arrived.set()
        for srv in self._tcp_servers:
            srv.close()
        for srv in self._tcp_servers:
            await srv.wait_closed()
        self._tcp_servers.clear()
        await self._batcher
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._pools.close()
        self._started = False

    async def __aenter__(self) -> "CodecServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def pool_reports(self):
        """``[(pool_name, SupervisionReport)]`` for every warm pool."""
        return [] if self._pools is None else self._pools.reports()

    # -- in-process API ------------------------------------------------------

    async def submit(
        self,
        op: str,
        payload: Any,
        params: Any = None,
        deadline: Optional[float] = None,
    ):
        """Submit one job; returns ``Completed | Rejected | Failed``.

        ``deadline`` is a relative budget in seconds (falls back to
        ``config.default_deadline``); it covers queueing *and* service.
        """
        if not self._started:
            raise RuntimeError("server is not running (call start())")
        if op not in ("encode", "decode"):
            raise ValueError(f"op must be 'encode' or 'decode', not {op!r}")
        budget = deadline if deadline is not None else self.config.default_deadline
        abs_deadline = None if budget is None else self.clock() + budget
        request = Request(
            next(self._ids), op, payload, params, deadline=abs_deadline,
            future=self._loop.create_future(),
        )
        self._count("requests", "Requests offered to the codec server.")
        rejection = self.queue.offer(request)
        self._gauge_depth()
        if rejection is not None:
            self._resolve(request, rejection)
        else:
            self._arrived.set()
        return await request.future

    # -- batcher -------------------------------------------------------------

    async def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            if self.queue.depth == 0:
                if self._stopping:
                    break
                try:
                    await asyncio.wait_for(self._arrived.wait(), timeout=0.05)
                except asyncio.TimeoutError:
                    # Idle sweep: queued deadlines must not wait for the
                    # next arrival to be honoured.
                    self._resolve_shed(self.queue.shed_expired())
                    continue
                self._arrived.clear()
                continue
            # One permit per pool: while every pool is busy the queue
            # backs up and overload sheds at the door.
            await self._slots.acquire()
            try:
                if cfg.batch_window > 0 and self.queue.depth < cfg.max_batch:
                    await asyncio.sleep(cfg.batch_window)
                batch, shed = self.queue.take(cfg.max_batch)
            except BaseException:
                self._slots.release()
                raise
            self._resolve_shed(shed)
            self._gauge_depth()
            if not batch:
                self._slots.release()
                continue
            pool = self._pools.acquire()
            fut = self._loop.run_in_executor(
                self._pools.executor, execute_batch, pool, batch,
                self.clock, self.tracer,
            )
            task = asyncio.ensure_future(self._finish_batch(pool, batch, fut))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _finish_batch(self, pool, batch, fut) -> None:
        try:
            results = await fut
        except Exception as exc:
            # Executor-level failure (not a codec error -- those are
            # captured per request): answer everyone explicitly.
            results = [(req, Failed(exc, 0.0, 0.0, len(batch))) for req in batch]
        finally:
            self._pools.release(pool)
            self._slots.release()
        self._observe("batch_size", "Requests per dispatched batch.",
                      len(batch), _BATCH_BUCKETS)
        for req, result in results:
            self._resolve(req, result)

    # -- result + metrics plumbing (event loop only) -------------------------

    def _resolve_shed(self, shed) -> None:
        for req, rejection in shed:
            self._resolve(req, rejection)

    def _resolve(self, request: Request, result) -> None:
        self._count("replies", "Requests answered (any verdict).")
        if isinstance(result, Rejected):
            self._count("shed", "Requests shed with an explicit Rejected.")
            if result.reason in SHED_REASONS:
                slug = result.reason.replace("-", "_")
                self._count(f"shed_{slug}", f"Requests shed: {result.reason}.")
        elif isinstance(result, Failed):
            self._count("errors", "Requests answered with a codec error.")
        elif isinstance(result, Completed):
            self._observe("queue_wait_seconds",
                          "Seconds queued before dispatch.",
                          result.queue_wait, _LATENCY_BUCKETS)
            self._observe("request_seconds",
                          "Service seconds (codec work, per request).",
                          result.service_seconds, _LATENCY_BUCKETS)
        if request.future is not None and not request.future.done():
            request.future.set_result(result)

    def _count(self, name: str, help: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"repro_serve_{name}_total", help).inc()

    def _observe(self, name: str, help: str, value: float, buckets) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                f"repro_serve_{name}", help, buckets=buckets
            ).observe(value)

    def _gauge_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_serve_queue_depth", "Admission queue depth."
            ).set(self.queue.depth)

    def _gauge_replay(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_serve_replay_entries", "Cached replayable replies."
            ).set(len(self.replay))

    # -- TCP/JSON-lines front door -------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        if not self._started:
            raise RuntimeError("start() the server before serve_tcp()")
        srv = await asyncio.start_server(self._handle_conn, host, port)
        self._tcp_servers.append(srv)
        addr = srv.sockets[0].getsockname()
        return addr[0], addr[1]

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Manually framed read loop: never trusts ``readline``'s
        buffer limit (an overrun would kill the connection), bounds
        frames at ``config.max_frame`` itself, and keeps serving the
        connection after an oversized or malformed frame."""
        write_lock = asyncio.Lock()
        tasks: set = set()
        max_frame = self.config.max_frame
        buf = bytearray()
        discarding = False
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    if buf and not discarding:
                        # Trailing frame without a newline before EOF.
                        self._spawn_line(bytes(buf), writer, write_lock,
                                         tasks)
                    break
                buf += chunk
                while True:
                    nl = buf.find(b"\n")
                    if nl < 0:
                        if discarding:
                            buf.clear()  # still inside the oversized frame
                        elif len(buf) > max_frame:
                            discarding = True
                            buf.clear()
                            await self._reply_frame_too_large(
                                writer, write_lock)
                        break
                    line = bytes(buf[:nl])
                    del buf[: nl + 1]
                    if discarding:
                        discarding = False  # the monster frame finally ended
                        continue
                    if len(line) > max_frame:
                        await self._reply_frame_too_large(writer, write_lock)
                        continue
                    if line.strip():
                        self._spawn_line(line, writer, write_lock, tasks)
        except (ConnectionError, OSError):
            pass  # torn mid-frame; in-flight replies flush below
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer went away first; nothing left to flush

    def _spawn_line(self, line: bytes, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, tasks: set) -> None:
        task = asyncio.ensure_future(
            self._handle_line(line, writer, write_lock)
        )
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def _reply_frame_too_large(self, writer: asyncio.StreamWriter,
                                     write_lock: asyncio.Lock) -> None:
        self._count("frame_too_large",
                    "Frames rejected for exceeding max_frame.")
        await self._write_reply(writer, write_lock, {
            "id": None, "status": "error",
            "error": f"frame-too-large: frames are capped at "
                     f"{self.config.max_frame} bytes",
            "retryable": False,
        })

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        rid = None
        try:
            msg = json.loads(line)
            rid = msg.get("id")
            reply = await self._dispatch_wire(msg)
        except Exception as exc:
            # Reaching here means the frame (not the codec) failed --
            # corruption, truncation, bad fields.  Flag it retryable:
            # the client's next attempt may arrive intact.
            self._count("wire_errors",
                        "Frames answered with a wire-level error.")
            reply = {"id": rid, "status": "error",
                     "error": f"{type(exc).__name__}: {exc}",
                     "retryable": True}
        await self._write_reply(writer, write_lock, reply)

    async def _write_reply(self, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock,
                           reply: Dict[str, Any]) -> None:
        async with write_lock:
            try:
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # reply unroutable; the request itself completed

    async def _dispatch_wire(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        rid = msg.get("id")
        op = msg.get("op")
        deadline = msg.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
        if op == "ping":
            return {"id": rid, "status": "ok", "pong": True}
        if op not in ("encode", "decode"):
            return {"id": rid, "status": "error",
                    "error": f"unknown op {op!r}"}
        key = msg.get("idem")
        executing = False
        if key is not None:
            key = str(key)
            verdict, found = self.replay.begin(key)
            if verdict == "cached":
                self._count("replay_hits",
                            "Retried requests answered without re-executing.")
                self._count("replay_cached",
                            "Replay hits served from the finished cache.")
                return dict(found, id=rid, replayed=True)
            if verdict == "joined":
                self._count("replay_hits",
                            "Retried requests answered without re-executing.")
                self._count("replay_joined",
                            "Replay hits joined to an in-flight execution.")
                reply = await found
                return dict(reply, id=rid, replayed=True)
            executing = True
        try:
            if op == "encode":
                payload = image_from_wire(msg["image"])
                params = params_from_wire(msg.get("params") or {})
                result = await self.submit("encode", payload, params,
                                           deadline=deadline)
            else:
                payload = base64.b64decode(msg["data_b64"])
                kwargs: Dict[str, Any] = {}
                if msg.get("max_layer") is not None:
                    kwargs["max_layer"] = int(msg["max_layer"])
                result = await self.submit("decode", payload, kwargs,
                                           deadline=deadline)
        except BaseException as exc:
            if executing:
                # Joined retries must not hang on a parse failure: hand
                # them the same (retryable) error, cache nothing.
                self.replay.abort(key, {
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "retryable": True,
                })
            raise
        reply = wire_reply(rid, op, result)
        if executing:
            # Only actual codec work (Completed/Failed, both
            # deterministic re-runs) is replay-cacheable; a shed
            # executed nothing, so a retry earns a fresh admission try.
            cacheable = isinstance(result, (Completed, Failed))
            if cacheable:
                self._count("replay_stores",
                            "Idempotent executions recorded for replay.")
            self.replay.finish(
                key, {k: v for k, v in reply.items() if k != "id"},
                cache=cacheable,
            )
            self._gauge_replay()
        return reply


# ---------------------------------------------------------------------------
# Wire encoding (shared with the load generator's TCP target).
# ---------------------------------------------------------------------------

#: CodecParams fields accepted over the wire (whitelist: the wire never
#: reaches supervision policies or other object-valued fields).
_WIRE_PARAM_FIELDS = (
    "levels", "filter_name", "cb_size", "base_step", "target_bpp",
    "tile_size", "bit_depth", "resilience",
)


def image_to_wire(img: np.ndarray) -> Dict[str, Any]:
    arr = np.ascontiguousarray(img)
    return {
        "shape": list(arr.shape),
        "dtype": str(arr.dtype),
        "data_b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def image_from_wire(d: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(d["data_b64"])
    arr = np.frombuffer(raw, dtype=np.dtype(d["dtype"]))
    return arr.reshape([int(s) for s in d["shape"]]).copy()


def params_from_wire(d: Dict[str, Any]) -> CodecParams:
    kwargs: Dict[str, Any] = {}
    for name in _WIRE_PARAM_FIELDS:
        if name in d and d[name] is not None:
            kwargs[name] = d[name]
    if "target_bpp" in kwargs:
        kwargs["target_bpp"] = tuple(float(b) for b in kwargs["target_bpp"])
    return CodecParams(**kwargs)


def wire_reply(rid: Any, op: str, result: Any) -> Dict[str, Any]:
    if isinstance(result, Completed):
        out: Dict[str, Any] = {
            "id": rid, "status": "ok",
            "queue_wait": round(result.queue_wait, 6),
            "service": round(result.service_seconds, 6),
            "batch_size": result.batch_size,
        }
        if op == "encode":
            out["data_b64"] = base64.b64encode(result.value).decode("ascii")
        else:
            out["image"] = image_to_wire(result.value)
        return out
    if isinstance(result, Rejected):
        return {"id": rid, "status": "rejected",
                "reason": result.reason, "detail": result.detail}
    return {"id": rid, "status": "error",
            "error": f"{type(result.error).__name__}: {result.error}"}
