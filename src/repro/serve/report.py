"""Latency-percentile + throughput reports for ``repro serve bench``.

A :class:`LoadReport` is the regression target the ROADMAP asks for:
scaling PRs run the same :class:`~repro.serve.loadgen.LoadSpec` and
compare percentiles/throughput across the ``BENCH_NNNN.json``
trajectory (``append_to_trajectory`` lands the report in the same
envelope the canonical scenario suite uses, so ``repro bench report``
renders serve runs alongside codec scenarios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["LoadReport", "LoadSample", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of measured samples (NaN when empty)."""
    if not values:
        return float("nan")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadSample:
    """The fate of one generated request."""

    index: int
    status: str  # "ok" | "rejected" | "error"
    reason: str = ""
    latency: float = 0.0  # submit -> reply, seconds
    queue_wait: float = 0.0
    service: float = 0.0
    batch_size: int = 0
    mismatch: bool = False  # reply differed from the direct-call oracle

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "status": self.status,
            "reason": self.reason, "latency": self.latency,
            "queue_wait": self.queue_wait, "service": self.service,
            "batch_size": self.batch_size, "mismatch": self.mismatch,
        }


@dataclass
class LoadReport:
    """One load run: spec, per-request samples, wall time.

    ``client`` carries the resilient client's own tally (attempts,
    retries, reconnects, replay hits, breaker opens) when the run went
    through :class:`~repro.serve.client.CodecClient` -- under injected
    chaos a *clean* run with nonzero retries is exactly the
    exactly-once story this layer exists to tell.
    """

    spec: Dict[str, Any]
    samples: List[LoadSample] = field(default_factory=list)
    elapsed: float = 0.0
    client: Optional[Dict[str, Any]] = None

    # -- tallies -------------------------------------------------------------

    @property
    def offered(self) -> int:
        return len(self.samples)

    @property
    def completed(self) -> int:
        return sum(1 for s in self.samples if s.status == "ok")

    @property
    def shed(self) -> int:
        return sum(1 for s in self.samples if s.status == "rejected")

    @property
    def errors(self) -> int:
        return sum(1 for s in self.samples if s.status == "error")

    @property
    def mismatches(self) -> int:
        return sum(1 for s in self.samples if s.mismatch)

    @property
    def clean(self) -> bool:
        """No sheds, no errors, no byte-mismatches -- the CI smoke bar."""
        return self.shed == 0 and self.errors == 0 and self.mismatches == 0

    def shed_reasons(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.samples:
            if s.status == "rejected":
                out[s.reason] = out.get(s.reason, 0) + 1
        return out

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed

    def latencies(self) -> List[float]:
        """Latency samples of *completed* requests only: a shed answers
        fast by design and must not flatter the percentiles."""
        return [s.latency for s in self.samples if s.status == "ok"]

    def percentiles(self) -> Dict[str, float]:
        lat = self.latencies()
        return {
            "p50": percentile(lat, 0.50),
            "p90": percentile(lat, 0.90),
            "p95": percentile(lat, 0.95),
            "p99": percentile(lat, 0.99),
            "max": max(lat) if lat else float("nan"),
        }

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        spec = self.spec
        pct = self.percentiles()
        done = self.completed
        frac = 100.0 * done / self.offered if self.offered else 0.0
        lines = [
            f"serve bench: {spec.get('op', '?')} {spec.get('side', '?')}px, "
            f"rate {spec.get('rate', 0):g} req/s for "
            f"{spec.get('duration', 0):g}s ({self.offered} offered)",
            f"  completed {done} ({frac:.1f}%), shed {self.shed}, "
            f"errors {self.errors}, byte-mismatches {self.mismatches}",
            f"  throughput {self.throughput:.1f} req/s "
            f"(wall {self.elapsed:.2f}s)",
            "  latency  "
            + "  ".join(
                f"{k} {1e3 * v:.1f} ms" for k, v in pct.items()
                if not math.isnan(v)
            ),
        ]
        reasons = self.shed_reasons()
        if reasons:
            lines.append(
                "  sheds: "
                + ", ".join(f"{k} {v}" for k, v in sorted(reasons.items()))
            )
        if self.client is not None:
            c = self.client
            lines.append(
                f"  client: {c.get('attempts', 0)} attempt(s) for "
                f"{c.get('requests', 0)} request(s), "
                f"retries {c.get('retries', 0)}, "
                f"reconnects {c.get('reconnects', 0)}, "
                f"replay hits {c.get('replay_hits', 0)}, "
                f"breaker opens {c.get('breaker_opens', 0)}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "spec": dict(self.spec),
            "elapsed": self.elapsed,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "throughput": self.throughput,
            "percentiles": self.percentiles(),
            "shed_reasons": self.shed_reasons(),
            "samples": [s.to_dict() for s in self.samples],
        }
        if self.client is not None:
            out["client"] = dict(self.client)
        return out

    def append_to_trajectory(self, path: Path,
                             name: Optional[str] = None) -> Path:
        """Record this run as an ``experiment:`` row in a trajectory
        file (everything except the raw per-request samples)."""
        from ..bench.trajectory import append_experiment

        spec = self.spec
        if name is None:
            name = (
                f"serve-{spec.get('op', '?')}-{spec.get('side', '?')}px-"
                f"r{spec.get('rate', 0):g}"
            )
        detail = self.to_dict()
        detail.pop("samples", None)
        return append_experiment(
            path, name=name, seconds=self.elapsed,
            checks_passed=self.clean, extra={"serve": detail},
        )
