"""Codec service layer: admission-controlled async batch serving.

The bridge from library to service (ROADMAP item 1): a
:class:`CodecServer` accepts encode/decode jobs in-process
(``await server.submit(...)``) or over a TCP/JSON-lines front door,
applies admission control (bounded queue, per-request deadlines,
explicit :class:`Rejected` sheds), batches work onto long-lived
supervised backend pools, and answers every admitted request exactly
once with bytes identical to a direct ``encode_image``/``decode_image``
call.  The wire protocol is exactly-once end to end: a
:class:`CodecClient` retries with backoff + jitter behind a circuit
breaker, every request carries an idempotency key, and the server's
:class:`ReplayCache` answers retries without re-executing tier-1
coding.  ``repro serve run`` starts a server; ``repro serve bench``
drives the deterministic open-loop load generator (optionally through
the ``repro.faults`` network-chaos proxy) and reports latency
percentiles + throughput + client resilience counters.

Import discipline: this package is *never* imported by the plain
encode/decode path (``repro.__getattr__`` resolves it lazily, and
``benchmarks/bench_serve.py`` holds a fresh-interpreter probe to keep
it that way) -- asyncio and the executor machinery stay out of library
users' processes.
"""

from __future__ import annotations

from .admission import (
    DEADLINE,
    QUEUE_FULL,
    SHED_REASONS,
    SHUTDOWN,
    AdmissionQueue,
    Completed,
    Failed,
    Rejected,
    Request,
)
from .batching import PoolSet, WarmPool, execute_batch, execute_request
from .client import (
    BreakerPolicy,
    CircuitBreaker,
    ClientStats,
    CodecClient,
    RetriesExhausted,
    RetryPolicy,
    params_to_wire,
    reply_to_result,
)
from .loadgen import (
    InProcessTarget,
    LoadSpec,
    TcpTarget,
    Workload,
    arrival_offsets,
    run_load,
)
from .replay import ReplayCache
from .report import LoadReport, LoadSample, percentile
from .server import (
    CodecServer,
    ServeConfig,
    image_from_wire,
    image_to_wire,
    params_from_wire,
    wire_reply,
)

__all__ = [
    "DEADLINE",
    "QUEUE_FULL",
    "SHED_REASONS",
    "SHUTDOWN",
    "AdmissionQueue",
    "BreakerPolicy",
    "CircuitBreaker",
    "ClientStats",
    "CodecClient",
    "CodecServer",
    "Completed",
    "Failed",
    "InProcessTarget",
    "LoadReport",
    "LoadSample",
    "LoadSpec",
    "PoolSet",
    "Rejected",
    "ReplayCache",
    "Request",
    "RetriesExhausted",
    "RetryPolicy",
    "ServeConfig",
    "TcpTarget",
    "WarmPool",
    "Workload",
    "arrival_offsets",
    "execute_batch",
    "execute_request",
    "image_from_wire",
    "image_to_wire",
    "params_from_wire",
    "params_to_wire",
    "percentile",
    "reply_to_result",
    "run_load",
    "wire_reply",
]
