"""Admission control: bounded queue, per-request deadlines, explicit sheds.

The service promise is *fail explicitly, fail cheaply*: a request the
server cannot finish in time is answered with a :class:`Rejected`
result the moment that becomes knowable -- at the queue door when the
depth cap is hit or the deadline has already passed, at dequeue time
when it expired while waiting, and pre-dispatch inside the supervision
loop (:class:`~repro.core.supervise.DeadlineExpired`) when the budget
runs out mid-service.  Nothing times out silently and nothing crashes
the caller; load past capacity degrades into sheds, not latency.

:class:`AdmissionQueue` is a plain thread-safe FIFO (the asyncio server
drains it from the event loop but offers may come from any thread via
``submit``'s synchronous front half), deliberately clock-injected so
the deterministic tests drive expiry with a fake clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple

__all__ = [
    "DEADLINE",
    "QUEUE_FULL",
    "SHUTDOWN",
    "AdmissionQueue",
    "Completed",
    "Failed",
    "Rejected",
    "Request",
    "SHED_REASONS",
]

#: Shed reasons (``Rejected.reason`` values; one counter per reason).
QUEUE_FULL = "queue-full"
DEADLINE = "deadline"
SHUTDOWN = "shutdown"
SHED_REASONS = (QUEUE_FULL, DEADLINE, SHUTDOWN)


@dataclass(frozen=True)
class Rejected:
    """The server explicitly declined to serve the request."""

    reason: str  # one of SHED_REASONS
    detail: str = ""

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class Completed:
    """The request was served; ``value`` is the codec result payload."""

    value: Any
    queue_wait: float = 0.0
    service_seconds: float = 0.0
    batch_size: int = 1

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Failed:
    """The codec raised; the error is reported, the server lives on."""

    error: BaseException
    queue_wait: float = 0.0
    service_seconds: float = 0.0
    batch_size: int = 1

    @property
    def ok(self) -> bool:
        return False


@dataclass
class Request:
    """One admitted (or about-to-be-admitted) encode/decode job.

    ``deadline`` is *absolute* on the server clock (``None`` = no
    budget); ``enqueued`` is stamped by the queue at admission so wait
    time is measured by the same clock that decides expiry.
    """

    id: int
    op: str  # "encode" | "decode"
    payload: Any  # image array (encode) | codestream bytes (decode)
    params: Any = None  # CodecParams for encode; decode kwargs dict for decode
    deadline: Optional[float] = None
    enqueued: float = 0.0
    future: Any = field(default=None, repr=False)  # asyncio.Future, server-owned


class AdmissionQueue:
    """Bounded FIFO with deadline shedding; every exit is explicit.

    ``offer`` returns ``None`` on admission or the :class:`Rejected`
    verdict (queue full / already expired / shutting down) -- the
    caller resolves the request immediately, so a shed costs one queue
    lock, never a pool slot.  ``take`` dequeues up to ``max_batch``
    live requests and *separately* returns everything that expired
    while queued, in arrival order, so the server can answer those
    first (deadline-expiry ordering: a request never outlives its
    budget just because fresher work arrived behind it).
    """

    def __init__(self, depth: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth_cap = depth
        self.clock = clock
        self._lock = threading.Lock()
        self._items: Deque[Request] = deque()
        self._closed = False

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def offer(self, request: Request) -> Optional[Rejected]:
        """Admit ``request`` (returns ``None``) or say exactly why not."""
        now = self.clock()
        with self._lock:
            if self._closed:
                return Rejected(SHUTDOWN, "server is stopping")
            if request.deadline is not None and now >= request.deadline:
                return Rejected(
                    DEADLINE,
                    f"deadline passed {now - request.deadline:.3f}s "
                    "before admission",
                )
            if len(self._items) >= self.depth_cap:
                return Rejected(
                    QUEUE_FULL,
                    f"admission queue at depth cap {self.depth_cap}",
                )
            request.enqueued = now
            self._items.append(request)
            return None

    def shed_expired(self) -> List[Tuple[Request, Rejected]]:
        """Remove every queued request whose deadline passed (arrival
        order preserved)."""
        now = self.clock()
        shed: List[Tuple[Request, Rejected]] = []
        with self._lock:
            keep: Deque[Request] = deque()
            for req in self._items:
                if req.deadline is not None and now >= req.deadline:
                    shed.append((req, Rejected(
                        DEADLINE,
                        f"expired after {now - req.enqueued:.3f}s queued",
                    )))
                else:
                    keep.append(req)
            self._items = keep
        return shed

    def take(self, max_batch: int) -> Tuple[List[Request], List[Tuple[Request, Rejected]]]:
        """Dequeue up to ``max_batch`` live requests plus the expired
        ones encountered on the way (always shed, never served)."""
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        now = self.clock()
        batch: List[Request] = []
        shed: List[Tuple[Request, Rejected]] = []
        with self._lock:
            while self._items and len(batch) < max_batch:
                req = self._items.popleft()
                if req.deadline is not None and now >= req.deadline:
                    shed.append((req, Rejected(
                        DEADLINE,
                        f"expired after {now - req.enqueued:.3f}s queued",
                    )))
                else:
                    batch.append(req)
        return batch, shed

    def close(self) -> List[Tuple[Request, Rejected]]:
        """Refuse new offers and drain the backlog as shutdown sheds."""
        with self._lock:
            self._closed = True
            drained = [(req, Rejected(SHUTDOWN, "server stopped while queued"))
                       for req in self._items]
            self._items.clear()
        return drained
