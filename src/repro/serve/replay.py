"""Idempotent replay: answer retried requests without re-executing.

The wire protocol's exactly-once contract rests here.  Every client
request may carry a client-generated *idempotency key*; the server
funnels keyed requests through a :class:`ReplayCache`:

* first sighting of a key -> ``("execute", None)``: the caller runs
  the codec work, then calls :meth:`finish` with the wire reply;
* a retry that lands *while the original is still executing* ->
  ``("joined", future)``: the caller awaits the same in-flight
  execution and relays its reply -- the retry never touches a pool;
* a retry that lands *after* completion -> ``("cached", reply)``: the
  stored reply is returned verbatim (modulo the echoed ``id``).

Only results that represent actual codec work (``Completed`` /
``Failed`` -- both deterministic for a given request) are cached;
explicit sheds (``Rejected``: queue-full, deadline, shutdown) resolve
joiners but are *not* cached, because a shed executed nothing and the
client's retry deserves a fresh admission attempt.

The cache is bounded two ways: entries expire ``ttl`` seconds after
completion (a retry later than that re-executes -- TTL idempotency is
the standard contract) and the table is capped at ``cap`` entries with
FIFO eviction (completion order == expiry order, so the oldest entry
is always the next to die anyway).  ``track_executions`` additionally
records per-key execution counts -- the chaos soak's "zero duplicate
backend executions" cross-check -- and is off by default so a
long-running server does not grow an unbounded dict.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["ReplayCache"]


class ReplayCache:
    """Bounded TTL cache of wire replies keyed by idempotency key.

    Single-threaded by design: every method runs on the server's event
    loop (the wire dispatch path), so there is no lock.  ``begin`` may
    be called outside a running loop for the ``execute``/``cached``
    verdicts; only a *join* needs the loop (it creates a future).
    """

    def __init__(
        self,
        cap: int = 1024,
        ttl: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        track_executions: bool = False,
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.cap = cap
        self.ttl = ttl
        self.clock = clock
        #: key -> (expires_at, reply); insertion order == expiry order.
        self._done: "OrderedDict[str, Tuple[float, Dict[str, Any]]]" = OrderedDict()
        #: key -> waiter futures of retries joined to the in-flight run.
        self._executing: Dict[str, List[asyncio.Future]] = {}
        self.executions: Optional[Dict[str, int]] = (
            {} if track_executions else None
        )
        self.evictions = 0
        self.expirations = 0

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._done)

    @property
    def inflight(self) -> int:
        return len(self._executing)

    def sweep(self) -> int:
        """Drop expired entries (FIFO prefix); returns how many died."""
        now = self.clock()
        dropped = 0
        while self._done:
            key, (expires, _) = next(iter(self._done.items()))
            if expires > now:
                break
            del self._done[key]
            dropped += 1
        self.expirations += dropped
        return dropped

    # -- the idempotency protocol -------------------------------------------

    def begin(self, key: str) -> Tuple[str, Any]:
        """Route one keyed request: ``("cached", reply)`` /
        ``("joined", future)`` / ``("execute", None)``."""
        self.sweep()
        entry = self._done.get(key)
        if entry is not None:
            return "cached", entry[1]
        if key in self._executing:
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._executing[key].append(fut)
            return "joined", fut
        self._executing[key] = []
        return "execute", None

    def finish(self, key: str, reply: Dict[str, Any],
               cache: bool = True) -> None:
        """Complete an ``execute``: resolve joiners, optionally store.

        ``cache=False`` is for sheds and wire-level failures -- joiners
        still get the reply (their request *was* answered by this
        attempt) but the next retry starts from scratch.
        """
        waiters = self._executing.pop(key, [])
        if cache:
            if self.executions is not None:
                self.executions[key] = self.executions.get(key, 0) + 1
            self._done[key] = (self.clock() + self.ttl, reply)
            while len(self._done) > self.cap:
                self._done.popitem(last=False)
                self.evictions += 1
        for fut in waiters:
            if not fut.done():
                fut.set_result(reply)

    def abort(self, key: str, reply: Dict[str, Any]) -> None:
        """An ``execute`` died before producing codec bytes: answer the
        joiners with the error reply, cache nothing."""
        self.finish(key, reply, cache=False)
