"""Warm backend pools and batch execution for the codec server.

A :class:`WarmPool` is one supervised execution backend built once and
reused for the server's whole life -- the point of the service layer is
that requests never pay pool spin-up.  :class:`PoolSet` owns ``N`` such
pools plus the thread executor that drives them; the server checks a
pool out per batch (an :mod:`asyncio` semaphore upstream guarantees one
is free), runs the batch in an executor thread, and checks it back in.

Batching invariant: a batch *shares* a warm pool and one executor
dispatch, but every request is coded individually and sequentially on
that pool -- images are never mixed into one codestream, so each reply
is byte-identical to a direct ``encode_image``/``decode_image`` call
with the same parameters (the cross-backend identity contract carries
the rest).  Worker death inside a batch is the supervisor's problem:
the pool rebuilds/degrades and the request still gets its bytes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..codec import CodecParams, decode_image, encode_image
from ..core.backend import ExecutionBackend, get_backend
from ..core.supervise import (
    DeadlineExpired,
    SupervisionPolicy,
    SupervisionReport,
    supervised,
)
from .admission import DEADLINE, Completed, Failed, Rejected, Request

__all__ = ["PoolSet", "WarmPool", "execute_batch", "execute_request"]


class WarmPool:
    """One long-lived supervised backend serving many requests."""

    def __init__(
        self,
        name: str,
        backend: str,
        workers: int,
        policy: Optional[SupervisionPolicy] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        wrap: Optional[Callable[[ExecutionBackend], ExecutionBackend]] = None,
    ) -> None:
        self.name = name
        self.backend_name = backend
        self.workers = workers
        self._inner = get_backend(backend, workers)
        wrapped = self._inner if wrap is None else wrap(self._inner)
        self.backend = supervised(
            wrapped, policy=policy, metrics=metrics, owns_inner=True,
            clock=clock,
        )

    @property
    def report(self) -> SupervisionReport:
        return self.backend.report

    def close(self) -> None:
        self.backend.close()


class PoolSet:
    """``N`` warm pools + the executor threads that drive them.

    The free list is a plain locked deque: the server only acquires
    after winning a semaphore permit sized to ``len(pools)``, so
    ``acquire`` never blocks and an empty free list is a logic error.
    """

    def __init__(
        self,
        backend: str,
        workers: int,
        pools: int,
        policy: Optional[SupervisionPolicy] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        wrap: Optional[Callable[[ExecutionBackend], ExecutionBackend]] = None,
    ) -> None:
        if pools < 1:
            raise ValueError("need at least one pool")
        from concurrent.futures import ThreadPoolExecutor

        self.pools: List[WarmPool] = []
        for i in range(pools):
            self.pools.append(WarmPool(
                f"{backend}-w{workers}-p{i}", backend, workers,
                policy=policy, metrics=metrics, clock=clock, wrap=wrap,
            ))
        self._lock = threading.Lock()
        self._free = deque(self.pools)
        self.executor = ThreadPoolExecutor(
            max_workers=pools, thread_name_prefix="repro-serve"
        )

    def acquire(self) -> WarmPool:
        with self._lock:
            if not self._free:
                raise RuntimeError(
                    "no free warm pool (semaphore/free-list out of sync)"
                )
            return self._free.popleft()

    def release(self, pool: WarmPool) -> None:
        with self._lock:
            self._free.append(pool)

    def reports(self) -> List[Tuple[str, SupervisionReport]]:
        return [(p.name, p.report) for p in self.pools]

    def close(self) -> None:
        self.executor.shutdown(wait=True)
        for pool in self.pools:
            pool.close()


def execute_request(
    pool: WarmPool,
    request: Request,
    clock: Callable[[], float] = time.monotonic,
    tracer=None,
    batch_size: int = 1,
):
    """Serve one request on ``pool``; always returns a result object.

    The request's absolute deadline becomes the supervised backend's
    ``call_deadline`` for the duration: an already-spent budget (or one
    that runs out between retry attempts) surfaces as
    :class:`DeadlineExpired` and is answered ``Rejected("deadline")``;
    codec exceptions become :class:`Failed`.  Runs in an executor
    thread -- nothing here touches the metrics registry (the event loop
    does all counting to keep the non-atomic counters race-free).
    """
    queue_wait = max(0.0, clock() - request.enqueued)
    if request.deadline is not None and clock() >= request.deadline:
        return Rejected(DEADLINE, "expired before dispatch")
    sup = pool.backend
    sup.call_deadline = request.deadline
    t0 = clock()
    try:
        if request.op == "encode":
            params = request.params if request.params is not None else CodecParams()
            if tracer is not None:
                with tracer.phase(f"serve.encode.b{batch_size}"):
                    value = encode_image(
                        request.payload, params,
                        backend=sup, n_workers=pool.workers,
                    ).data
            else:
                value = encode_image(
                    request.payload, params,
                    backend=sup, n_workers=pool.workers,
                ).data
        elif request.op == "decode":
            kwargs = dict(request.params or {})
            if tracer is not None:
                with tracer.phase(f"serve.decode.b{batch_size}"):
                    value = decode_image(
                        request.payload, backend=sup,
                        n_workers=pool.workers, **kwargs,
                    )
            else:
                value = decode_image(
                    request.payload, backend=sup,
                    n_workers=pool.workers, **kwargs,
                )
        else:
            raise ValueError(f"unknown op {request.op!r}")
    except DeadlineExpired as exc:
        return Rejected(DEADLINE, str(exc))
    except Exception as exc:  # codec errors answer the request, not kill the server
        return Failed(exc, queue_wait, clock() - t0, batch_size)
    finally:
        sup.call_deadline = None
    return Completed(value, queue_wait, clock() - t0, batch_size)


def execute_batch(
    pool: WarmPool,
    batch: Sequence[Request],
    clock: Callable[[], float] = time.monotonic,
    tracer=None,
) -> List[Tuple[Request, Any]]:
    """Serve a batch sequentially on one warm pool (one thread)."""
    n = len(batch)
    return [
        (req, execute_request(pool, req, clock=clock, tracer=tracer,
                              batch_size=n))
        for req in batch
    ]
