"""Full-scale extension study: error-resilient decoding under injected
faults (see the experiment module's docstring)."""

from repro.experiments import ext_resilience as _mod

from conftest import run_experiment


def test_bench_ext_resilience(benchmark):
    run_experiment(benchmark, _mod)
