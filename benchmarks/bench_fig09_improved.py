"""Full-scale regeneration of the paper's fig09 (see the experiment
module's docstring for what the paper shows and which claims are
checked).  Run with `-s` to print the regenerated series."""

from repro.experiments import fig09_improved as _mod

from conftest import run_experiment


def test_bench_fig09_improved(benchmark):
    run_experiment(benchmark, _mod)
