"""Cost envelope of the analysis layer (DESIGN.md sec. 10).

Two promises are enforced here:

- **Opt-in only.** The race detector must cost nothing when unused:
  the normal encode path never imports ``repro.analysis``, and an
  undetected encode's wall time is unchanged (the detector's shadow
  execution happens only inside ``RaceDetectorBackend``).
- **Lint stays fast.** A full-repo ``repro lint`` (all six rules over
  every module of ``src/repro``) must finish well under the ~5 s mark
  that keeps it viable as a pre-commit/CI step.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def test_bench_full_repo_lint(benchmark):
    from repro.analysis import load_baseline, run_lint

    baseline = load_baseline(ROOT / "lint-baseline.txt")

    def lint():
        return run_lint([SRC / "repro"], baseline=baseline)

    result = benchmark.pedantic(lint, rounds=3, iterations=1)
    print(f"\nlint: {result.n_files} files, "
          f"{len(result.findings)} finding(s)")
    assert result.n_files > 90
    assert result.ok, "\n".join(f.format() for f in result.findings)
    assert benchmark.stats["min"] < 5.0, "full-repo lint must stay under 5 s"


def test_bench_detector_is_opt_in(benchmark):
    """The normal path never imports repro.analysis, and an encode that
    doesn't ask for the detector pays nothing for its existence."""
    # Fresh interpreter: import the codec, run an encode, verify the
    # analysis module was never pulled in as a side effect.
    probe = (
        "import sys\n"
        "import numpy as np\n"
        "from repro.codec import CodecParams, encode_image\n"
        "from repro.image import SyntheticSpec, synthetic_image\n"
        "img = synthetic_image(SyntheticSpec(64, 64, 'mix', seed=3))\n"
        "encode_image(img, CodecParams(levels=3, cb_size=32))\n"
        "loaded = [m for m in sys.modules if m.startswith('repro.analysis')]\n"
        "assert not loaded, f'normal path imported {loaded}'\n"
        "print('clean')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True, text=True, env={"PYTHONPATH": str(SRC)},
    )
    assert out.returncode == 0, out.stderr
    assert "clean" in out.stdout

    from repro.analysis import RaceDetectorBackend
    from repro.codec import CodecParams, encode_image
    from repro.core.backend import get_backend
    from repro.image import SyntheticSpec, synthetic_image

    img = synthetic_image(SyntheticSpec(128, 128, "mix", seed=3))
    params = CodecParams(levels=3, cb_size=32, base_step=1 / 64,
                         target_bpp=(1.0,))

    with get_backend("threads", 2) as bk:
        t0 = time.perf_counter()
        plain = encode_image(img, params, backend=bk, n_workers=2)
        plain_s = time.perf_counter() - t0

        det = RaceDetectorBackend(bk)
        t0 = time.perf_counter()
        checked = encode_image(img, params, backend=det, n_workers=2)
        checked_s = time.perf_counter() - t0

    def undetected():
        with get_backend("threads", 2) as fresh:
            return encode_image(img, params, backend=fresh, n_workers=2)

    benchmark.pedantic(undetected, rounds=3, iterations=1)
    print(f"\nencode: plain {plain_s:.3f}s, under detector {checked_s:.3f}s "
          f"(x{checked_s / max(plain_s, 1e-9):.1f}); "
          f"races found: {len(det.report.races)}")
    # Same bytes either way (the detector only observes), and clean.
    assert checked.data == plain.data
    assert det.report.clean
