"""Ablation: cache associativity vs the column-stride pathology.

The paper blames the conflict on the filter being "longer than [the]
4-way associative cache".  Sweeping associativity at fixed capacity shows
the two regimes: raising ways widens the effective per-set capacity
(period x ways), but for power-of-two strides the set period is so small
that only impractically high associativity (enough ways to hold a whole
column) would repair reuse -- the software fixes are the right answer.
"""

import pytest

from repro.cachesim import CacheConfig, analytic_sweep_misses, set_period
from repro.wavelet import FILTER_9_7
from repro.wavelet.strategies import plan_vertical_filter


def test_bench_associativity(benchmark):
    side = 1024  # 1024 rows: a column is 1024 lines
    size = 128 * 1024

    def run():
        out = {}
        for ways in (1, 2, 4, 8, 16, 64, 1024):
            cfg = CacheConfig(size, 32, ways)
            sw = plan_vertical_filter(side, side, 1, FILTER_9_7, elem_size=4)
            mb = analytic_sweep_misses(sw, cfg, 4)
            out[ways] = (mb.misses, mb.set_period, mb.capacity_lines, mb.column_survives)
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nways  sets  period  capacity  survives  misses")
    for ways, (misses, period, cap, survives) in table.items():
        sets = size // 32 // ways
        print(f"{ways:4d}  {sets:4d}  {period:6d}  {cap:8d}  {str(survives):8s}  {misses}")

    # Pathological regime: realistic associativities do not help at all.
    assert table[1][0] == table[4][0] == table[16][0]
    # Only column-sized effective capacity restores reuse.
    surviving = [w for w, row in table.items() if row[3]]
    assert surviving and min(surviving) >= 64
    assert table[min(surviving)][0] < table[4][0] / 4
