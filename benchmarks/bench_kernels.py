"""Wall-clock micro-benchmarks of the real computational kernels.

These time this repository's actual Python implementations (not the
simulated 2002 machines): the wavelet transform, one tier-1 code-block,
MQ coder throughput, and the two baseline codecs.  They back the
real-measurement half of Fig. 2 and give contributors a regression
baseline.
"""

import numpy as np
import pytest

from repro.baselines import jpeg_encode, spiht_encode
from repro.codec import CodecParams, encode_image
from repro.ebcot import encode_codeblock
from repro.ebcot.mq import MQEncoder
from repro.image import SyntheticSpec, synthetic_image
from repro.wavelet import dwt2d


@pytest.fixture(scope="module")
def image512():
    return synthetic_image(SyntheticSpec(512, 512, "mix", seed=2))


@pytest.fixture(scope="module")
def image256():
    return synthetic_image(SyntheticSpec(256, 256, "mix", seed=2))


def test_bench_dwt2d_512(benchmark, image512):
    shifted = image512.astype(np.float64) - 128.0
    benchmark(dwt2d, shifted, 5, "9/7")


def test_bench_dwt2d_53_512(benchmark, image512):
    shifted = image512.astype(np.int64) - 128
    benchmark(dwt2d, shifted, 5, "5/3")


def test_bench_t1_codeblock_64(benchmark):
    rng = np.random.default_rng(0)
    coeffs = np.round(rng.laplace(0, 40, size=(64, 64))).astype(np.int64)
    benchmark(encode_codeblock, coeffs, "HL")


def test_bench_mq_throughput(benchmark):
    rng = np.random.default_rng(1)
    decisions = (rng.random(20000) < 0.2).astype(int).tolist()
    contexts = rng.integers(0, 19, size=20000).tolist()

    def run():
        enc = MQEncoder(19)
        encode = enc.encode
        for d, c in zip(decisions, contexts):
            encode(d, c)
        enc.flush()
        return enc.get_bytes()

    data = benchmark(run)
    assert len(data) > 100


def test_bench_jpeg_encode_256(benchmark, image256):
    benchmark(jpeg_encode, image256, 75)


def test_bench_spiht_encode_256(benchmark, image256):
    benchmark(spiht_encode, image256, 1.0, 5)


def test_bench_jpeg2000_encode_256(benchmark, image256):
    params = CodecParams(levels=5, base_step=1 / 64)
    benchmark.pedantic(encode_image, args=(image256, params), rounds=1, iterations=1)
