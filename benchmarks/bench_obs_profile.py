"""Cost envelope of the sampling profiler (DESIGN.md sec. 11).

Two promises are enforced here:

- **Zero-import on the normal path.** A traced encode/decode (even one
  that runs on a thread or process backend) must never pull in
  ``repro.obs.profile`` or ``repro.bench`` as a side effect -- the
  profiler is strictly opt-in, and the tracer's per-thread active-name
  map is the only cost it leaves on the hot path.
- **Observe-only.** Profiling an encode changes neither its output
  bytes nor (to within sampling overhead) its runtime: the sampler
  walks ``sys._current_frames()`` from its own thread, it never
  instruments the coder.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

_FORBIDDEN = ("repro.obs.profile", "repro.bench")


def test_bench_profiler_is_never_imported_on_normal_path(benchmark):
    """Fresh interpreter: traced encode + threaded decode, then verify
    the profiler/bench modules were never pulled in."""
    probe = (
        "import sys\n"
        "import numpy as np\n"
        "from repro.codec import CodecParams, decode_image, encode_image\n"
        "from repro.image import SyntheticSpec, synthetic_image\n"
        "from repro.obs import Tracer\n"
        "img = synthetic_image(SyntheticSpec(64, 64, 'mix', seed=3))\n"
        "res = encode_image(img, CodecParams(levels=3, cb_size=32),\n"
        "                   tracer=Tracer(), n_workers=2)\n"
        "decode_image(res.data, tracer=Tracer(), n_workers=2)\n"
        f"bad = [m for m in sys.modules if m.startswith({_FORBIDDEN!r})]\n"
        "assert not bad, f'normal traced path imported {bad}'\n"
        "print('clean')\n"
    )

    def run_probe():
        return subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True, text=True, env={"PYTHONPATH": str(SRC)},
        )

    out = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    assert out.returncode == 0, out.stderr
    assert "clean" in out.stdout


def test_bench_profiler_observes_without_changing_output(benchmark):
    from repro.codec import CodecParams, encode_image
    from repro.image import SyntheticSpec, synthetic_image
    from repro.obs import Tracer
    from repro.obs.profile import SamplingProfiler

    img = synthetic_image(SyntheticSpec(128, 128, "mix", seed=3))
    params = CodecParams(levels=3, cb_size=32, base_step=1 / 64)

    t0 = time.perf_counter()
    plain = encode_image(img, params)
    plain_s = time.perf_counter() - t0

    tracer = Tracer()
    prof = SamplingProfiler(tracer, hz=200.0)
    t0 = time.perf_counter()
    with prof:
        profiled = encode_image(img, params, tracer=tracer)
    profiled_s = time.perf_counter() - t0

    def profiled_encode():
        tr = Tracer()
        with SamplingProfiler(tr, hz=200.0):
            return encode_image(img, params, tracer=tr)

    benchmark.pedantic(profiled_encode, rounds=3, iterations=1)
    top = prof.top_functions(5)
    print(f"\nencode: plain {plain_s:.3f}s, profiled {profiled_s:.3f}s "
          f"(x{profiled_s / max(plain_s, 1e-9):.2f}); "
          f"{prof.n_samples} sampling tick(s)")
    for func, count, frac in top:
        print(f"  {100.0 * frac:5.1f}%  {count:>6}  {func}")
    # Identical bytes: the profiler only observes.
    assert profiled.data == plain.data
    assert prof.n_samples > 0
    assert top, "a 128px encode must produce busy samples"
