"""Full-scale extension study: pipeline tracing, worker timelines and
Amdahl accounting (see the experiment module's docstring)."""

from repro.experiments import ext_observability as _mod

from conftest import run_experiment


def test_bench_ext_observability(benchmark):
    run_experiment(benchmark, _mod)
