"""Import discipline of the service layer (DESIGN.md sec. 12).

The promise enforced here: ``repro.serve`` (and with it asyncio's
server machinery and the warm-pool executors) is strictly opt-in.  A
library user doing a plain -- even traced, even parallel -- encode or
decode must never pull the service layer into their process;
``repro.__getattr__`` resolves the ``serve`` attribute lazily and
nothing on the codec path may import it eagerly.  A second probe pins
the opposite direction: importing ``repro.serve`` *does* work on demand
and exposes the server entry points.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

_FORBIDDEN = ("repro.serve",)


def _run(probe: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True, text=True, env={"PYTHONPATH": str(SRC)},
    )


def test_bench_serve_is_never_imported_on_normal_path(benchmark):
    """Fresh interpreter: ``import repro`` + traced parallel encode and
    decode, then verify the service layer was never pulled in."""
    probe = (
        "import sys\n"
        "import repro\n"
        "from repro.codec import CodecParams, decode_image, encode_image\n"
        "from repro.image import SyntheticSpec, synthetic_image\n"
        "from repro.obs import Tracer\n"
        "img = synthetic_image(SyntheticSpec(64, 64, 'mix', seed=3))\n"
        "res = encode_image(img, CodecParams(levels=3, cb_size=32),\n"
        "                   tracer=Tracer(), n_workers=2)\n"
        "decode_image(res.data, tracer=Tracer(), n_workers=2)\n"
        f"bad = [m for m in sys.modules if m.startswith({_FORBIDDEN!r})]\n"
        "assert not bad, f'normal codec path imported {bad}'\n"
        "print('clean')\n"
    )

    out = benchmark.pedantic(lambda: _run(probe), rounds=1, iterations=1)
    assert out.returncode == 0, out.stderr
    assert "clean" in out.stdout


def test_bench_serve_lazy_attribute_resolves(benchmark):
    """The flip side: ``repro.serve`` must resolve on demand (lazy
    ``__getattr__``) and expose the server API."""
    probe = (
        "import sys\n"
        "import repro\n"
        "assert 'repro.serve' not in sys.modules\n"
        "serve = repro.serve\n"
        "assert 'repro.serve' in sys.modules\n"
        "assert serve.CodecServer is not None\n"
        "assert serve.ServeConfig is not None\n"
        "print('lazy-ok')\n"
    )

    out = benchmark.pedantic(lambda: _run(probe), rounds=1, iterations=1)
    assert out.returncode == 0, out.stderr
    assert "lazy-ok" in out.stdout
