"""Ablation: code-block scheduling policies for the tier-1 worker pool.

The paper solves tier-1 load imbalance with "a pool of worker threads
and a staggered round robin assignment".  This ablation compares it with
plain round robin, a dynamic work queue, and the LPT oracle on the real
per-block cost distribution of an actual encode (block costs vary with
content, and spatially adjacent blocks have correlated costs -- the case
serpentine dealing is built for).
"""

import pytest

from repro.perf import measure_pixel_stats, scaled_workload
from repro.smp import (
    INTEL_SMP,
    list_schedule,
    load_imbalance,
    longest_processing_time,
    round_robin,
    staggered_round_robin,
)
from repro.perf.workmodel import DEFAULT_WORK_PARAMS, t1_block_task


@pytest.fixture(scope="module")
def block_tasks():
    from repro.codec import CodecParams, encode_image
    from repro.image import SyntheticSpec, synthetic_image

    img = synthetic_image(SyntheticSpec(256, 256, "mix", seed=8))
    res = encode_image(img, CodecParams(levels=4, base_step=1 / 64, cb_size=32))
    return [
        t1_block_task(
            rec.decisions, rec.n_samples, rec.encoded.n_passes,
            INTEL_SMP, DEFAULT_WORK_PARAMS, f"cb{i}",
        )
        for i, rec in enumerate(res.blocks)
    ]


def test_bench_scheduling(benchmark, block_tasks):
    weight = lambda t: t.cycles(INTEL_SMP)
    policies = {
        "round_robin": lambda items, p: round_robin(items, p),
        "staggered_rr": lambda items, p: staggered_round_robin(items, p),
        "dynamic_queue": lambda items, p: list_schedule(items, p, weight),
        "LPT_oracle": lambda items, p: longest_processing_time(items, p, weight),
    }

    def run():
        out = {}
        for name, policy in policies.items():
            for p in (2, 4, 8):
                out[(name, p)] = load_imbalance(policy(block_tasks, p), weight)
        return out

    imb = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\npolicy         P=2     P=4     P=8   (real encode costs)")
    for name in policies:
        row = "  ".join(f"{imb[(name, p)]:.4f}" for p in (2, 4, 8))
        print(f"{name:13s} {row}")

    for p in (2, 4, 8):
        # Real block costs are not monotone, so serpentine and plain RR
        # land within noise of each other -- both near-balanced.
        assert abs(imb[("staggered_rr", p)] - imb[("round_robin", p)]) < 0.03
        assert imb[("staggered_rr", p)] < 1.15
        # Cost-aware policies are both essentially balanced (LPT's
        # guarantee is worst-case, not per-instance).
        assert imb[("LPT_oracle", p)] < 1.05
        assert imb[("dynamic_queue", p)] < 1.05

    # The case staggering is FOR: a monotone cost gradient across the
    # block scan (e.g. detail energy growing toward one image corner).
    gradient = [float(i + 1) for i in range(96)]
    gw = lambda x: x
    for p in (2, 4, 8):
        rr = load_imbalance(round_robin(gradient, p), gw)
        stag = load_imbalance(staggered_round_robin(gradient, p), gw)
        assert stag < rr
        assert stag < 1.01
