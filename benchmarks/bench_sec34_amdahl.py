"""Full-scale regeneration of the paper's sec34 (see the experiment
module's docstring for what the paper shows and which claims are
checked).  Run with `-s` to print the regenerated series."""

from repro.experiments import sec34_amdahl as _mod

from conftest import run_experiment


def test_bench_sec34_amdahl(benchmark):
    run_experiment(benchmark, _mod)
