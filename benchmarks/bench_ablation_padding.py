"""Ablation: the paper's rejected fix (width padding) vs its adopted one.

The paper tried padding the image width off the power of two first and
found column aggregation "more effective".  The two-level cache model
explains why: padding restores set diversity, so it works exactly when
the whole column fits in the cache -- it repairs the 512 KiB L2 for the
paper's image heights but does nothing for the 16 KiB L1, and it breaks
down entirely once the column outgrows the cache.  Aggregation streams
each line once and is insensitive to both cache size and column length.
"""

import pytest

from repro.cachesim import CacheConfig, analytic_sweep_misses
from repro.wavelet import FILTER_9_7
from repro.wavelet.strategies import VerticalStrategy, plan_vertical_filter


def _misses(height, width, strategy, cache):
    sw = plan_vertical_filter(height, width, 1, FILTER_9_7, strategy, elem_size=4)
    n_passes = 1 if strategy is VerticalStrategy.AGGREGATED else 4
    return analytic_sweep_misses(sw, cache, n_passes).misses


def test_bench_padding_vs_aggregation(benchmark):
    caches = {
        "L1 16K/4w": CacheConfig(16 * 1024, 32, 4),
        "L2 512K/4w": CacheConfig(512 * 1024, 32, 4),
        "L2 64K/4w": CacheConfig(64 * 1024, 32, 4),
    }
    sizes = (1024, 4096)

    def run():
        out = {}
        for cname, cache in caches.items():
            for side in sizes:
                for strat in VerticalStrategy:
                    out[(cname, side, strat)] = _misses(side, side, strat, cache)
        return out

    misses = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\ncache       side  naive      padded     aggregated")
    for cname in caches:
        for side in sizes:
            n = misses[(cname, side, VerticalStrategy.NAIVE)]
            p = misses[(cname, side, VerticalStrategy.PADDED)]
            a = misses[(cname, side, VerticalStrategy.AGGREGATED)]
            print(f"{cname:11s} {side:5d} {n:10d} {p:10d} {a:10d}")

    # Aggregation always wins or ties (within the straddle-line epsilon).
    for key in misses:
        cname, side, strat = key
        a = misses[(cname, side, VerticalStrategy.AGGREGATED)]
        assert a <= misses[key] * 1.05

    # Padding repairs the big L2 for a 4096-row column...
    l2 = "L2 512K/4w"
    assert misses[(l2, 4096, VerticalStrategy.PADDED)] < misses[
        (l2, 4096, VerticalStrategy.NAIVE)
    ] / 4
    # ...but fails in the L1 (column never fits 16 KiB)...
    l1 = "L1 16K/4w"
    assert misses[(l1, 4096, VerticalStrategy.PADDED)] > misses[
        (l1, 4096, VerticalStrategy.AGGREGATED)
    ] * 4
    # ...and in a smaller L2 once the column outgrows it.
    small = "L2 64K/4w"
    assert misses[(small, 4096, VerticalStrategy.PADDED)] > misses[
        (small, 4096, VerticalStrategy.AGGREGATED)
    ] * 4
