"""Full-scale extension study: serial/threads/processes execution
backends under the differential contract -- byte-identical codestreams,
bit-exact decodes (see the experiment module's docstring)."""

from repro.experiments import ext_backends as _mod

from conftest import run_experiment


def test_bench_ext_backends(benchmark):
    run_experiment(benchmark, _mod)
