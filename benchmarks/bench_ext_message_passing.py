"""Full-scale extension study: SMP vs message-passing clusters (see the
experiment module's docstring)."""

from repro.experiments import ext_message_passing as _mod

from conftest import run_experiment


def test_bench_ext_message_passing(benchmark):
    run_experiment(benchmark, _mod)
