"""Ablation: how the shared-bus bandwidth shapes the speedup saturation.

The paper attributes the naive vertical filter's poor speedup to "the
congestion of the bus caused by the high number of cache misses".  This
ablation re-runs the Fig. 8 measurement on hypothetical machines whose
bus is 1/4x .. 16x the modelled Intel FSB: with a fat enough bus the
naive code scales almost linearly (the cache misses cost latency but not
*shared* bandwidth), and with a starved bus even the improved filter
saturates -- the saturation point is a pure function of (miss traffic x
bus bandwidth), exactly the paper's diagnosis.
"""

import dataclasses

import pytest

from repro.cachesim.bus import SharedBus
from repro.experiments.common import standard_workload
from repro.perf.costmodel import simulate_encode
from repro.smp import INTEL_SMP
from repro.wavelet.strategies import VerticalStrategy


def _machine_with_bus(factor: float):
    bus = SharedBus(
        bytes_per_cycle=INTEL_SMP.bus.bytes_per_cycle * factor,
        line_size=INTEL_SMP.bus.line_size,
    )
    return dataclasses.replace(INTEL_SMP, bus=bus)


def test_bench_bus_bandwidth(benchmark):
    wl = standard_workload(4096)
    factors = (0.25, 1.0, 4.0, 16.0)

    def run():
        out = {}
        for f in factors:
            machine = _machine_with_bus(f)
            for strat in (VerticalStrategy.NAIVE, VerticalStrategy.AGGREGATED):
                v1 = simulate_encode(wl, machine, 1, strat).vertical_ms()
                v4 = simulate_encode(wl, machine, 4, strat).vertical_ms()
                out[(f, strat)] = v1 / v4
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nbus x   naive-vert speedup@4   improved-vert speedup@4")
    for f in factors:
        print(
            f"{f:5.2f}   {speedups[(f, VerticalStrategy.NAIVE)]:20.2f}"
            f"   {speedups[(f, VerticalStrategy.AGGREGATED)]:23.2f}"
        )

    naive = [speedups[(f, VerticalStrategy.NAIVE)] for f in factors]
    improved = [speedups[(f, VerticalStrategy.AGGREGATED)] for f in factors]
    # Naive scaling is bus-limited: monotone in bandwidth, poor when starved.
    assert all(a <= b + 1e-9 for a, b in zip(naive, naive[1:]))
    assert naive[0] < 1.2  # quarter-bandwidth: essentially no speedup
    assert naive[-1] > 3.0  # 16x bus: misses no longer shared-limited
    # The improved filter's little traffic makes it far less bus-
    # sensitive: it still beats naive on the starved bus and is flat
    # from the real FSB upward (its residual limits are fork/join and
    # the small upper decomposition levels, not bandwidth).
    assert improved[0] > naive[0] + 0.3
    assert improved[-1] / improved[1] < 1.2
