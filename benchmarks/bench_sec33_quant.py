"""Full-scale regeneration of the paper's sec33 (see the experiment
module's docstring for what the paper shows and which claims are
checked).  Run with `-s` to print the regenerated series."""

from repro.experiments import sec33_quant as _mod

from conftest import run_experiment


def test_bench_sec33_quant(benchmark):
    run_experiment(benchmark, _mod)
