"""Ablation: the pathology is a property of the *width*, not the size.

The paper triggers its cache disaster with "large images with width equal
to a power-of-two".  Sweeping the width through 4095 / 4096 / 4097 (and
other nearby values) shows the cliff: one column of pixels more or less
changes vertical filtering cost by an order of magnitude, while
horizontal filtering doesn't care.  This is the experiment that would
have localized the bug in the reference codecs immediately.
"""

import pytest

from repro.cachesim import analytic_sweep_misses, set_period
from repro.smp import INTEL_SMP
from repro.perf.workmodel import DEFAULT_WORK_PARAMS, dwt_sweep_task
from repro.wavelet import FILTER_9_7
from repro.wavelet.strategies import plan_horizontal_filter, plan_vertical_filter


def _vertical_ms(width: int, height: int = 2048) -> float:
    sw = plan_vertical_filter(height, width, 1, FILTER_9_7, elem_size=4)
    task = dwt_sweep_task(sw, FILTER_9_7, INTEL_SMP, DEFAULT_WORK_PARAMS, "v")
    return INTEL_SMP.cycles_to_ms(task.cycles(INTEL_SMP))


def _horizontal_ms(width: int, height: int = 2048) -> float:
    sw = plan_horizontal_filter(height, width, 1, FILTER_9_7, elem_size=4)
    task = dwt_sweep_task(sw, FILTER_9_7, INTEL_SMP, DEFAULT_WORK_PARAMS, "h")
    return INTEL_SMP.cycles_to_ms(task.cycles(INTEL_SMP))


def test_bench_image_width_cliff(benchmark):
    widths = (4000, 4095, 4096, 4097, 4104, 4608, 8192)

    def run():
        return {
            w: (
                _vertical_ms(w),
                _horizontal_ms(w),
                set_period(w * 4, INTEL_SMP.l1),
            )
            for w in widths
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nwidth  L1-period  vertical(ms)  horizontal(ms)  v/h")
    for w, (v, h, p) in table.items():
        print(f"{w:5d}  {p:9d}  {v:12.1f}  {h:14.1f}  {v / h:5.1f}")

    v4096 = table[4096][0]
    # One column more or less: order-of-magnitude cliff.
    assert v4096 > 5 * table[4095][0]
    assert v4096 > 5 * table[4097][0]
    # Another power of two is just as bad, per normalized cost.
    assert table[8192][0] > 5 * 2 * table[4095][0]
    # Horizontal filtering is width-insensitive (per-sample).
    hs = {w: h / (w * 2048) for w, (_, h, _) in table.items()}
    assert max(hs.values()) < 1.5 * min(hs.values())
    # 4104 = 4096 + 8: stride still line-aligned, full set diversity.
    assert table[4104][0] < v4096 / 5
