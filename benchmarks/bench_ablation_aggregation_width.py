"""Ablation: how many adjacent columns should one processor aggregate?

The paper fixes the aggregation at one cache line's worth of columns.
This ablation sweeps the width: misses fall until the group covers a full
line (8 float32 columns on 32-byte lines) and stay flat beyond -- wider
groups burn register/buffer space with no further miss reduction, so the
paper's choice is the knee of the curve.
"""

import math

import pytest

from repro.cachesim import analytic_sweep_misses
from repro.smp import INTEL_SMP
from repro.wavelet import FILTER_9_7
from repro.wavelet.strategies import Sweep


def _sweep_with_aggregation(width: int, agg: int) -> Sweep:
    return Sweep(
        level=1,
        direction="vertical",
        n_along=width,
        n_lines=width,
        elem_size=4,
        row_stride_bytes=width * 4,
        aggregation=agg,
        ops_per_sample=FILTER_9_7.ops_per_sample,
    )


def _misses(width: int, agg: int) -> int:
    sw = _sweep_with_aggregation(width, agg)
    n_passes = 1 if agg > 1 else len(FILTER_9_7.lifting_steps)
    return analytic_sweep_misses(sw, INTEL_SMP.l2, n_passes).misses


def test_bench_aggregation_width(benchmark):
    width = 4096
    widths = (1, 2, 4, 8, 16, 32, 64)

    def run():
        return {agg: _misses(width, agg) for agg in widths}

    misses = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nagg_width  L2_misses  vs_naive")
    naive = misses[1]
    for agg in widths:
        print(f"{agg:9d}  {misses[agg]:9d}  {naive / misses[agg]:7.1f}x")

    # Monotone non-increasing up to one line's worth of columns.
    line_cols = INTEL_SMP.l2.line_size // 4
    seq = [misses[a] for a in widths if a <= line_cols]
    assert all(a >= b for a, b in zip(seq, seq[1:]))
    # The knee: one-line groups already capture >= 90% of the possible gain.
    best = min(misses.values())
    assert misses[line_cols] <= best * 1.1
    # Diminishing returns beyond the knee.
    assert misses[line_cols] / misses[64] < 1.5
