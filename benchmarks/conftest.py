"""Benchmark harness configuration.

Every ``bench_figNN_*`` module regenerates one figure of the paper at
full scale, asserts its qualitative checks, and prints the regenerated
series (run with ``-s`` to see the tables).  The ``benchmark`` fixture
times one full regeneration (single round: the experiments are
deterministic, so repetition adds nothing).
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, module, quick: bool = False):
    """Time one full experiment run, assert and display its results."""
    result = benchmark.pedantic(
        module.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print("\n" + result.summary())
    assert result.all_passed, f"{result.name} failed: {result.failed_checks()}"
    return result


@pytest.fixture(scope="session")
def paper_workload_16384k():
    """The paper's headline workload (16384 Kpixel), session-cached."""
    from repro.experiments.common import standard_workload

    return standard_workload(16384)


@pytest.fixture(scope="session")
def paper_workload_4096k():
    from repro.experiments.common import standard_workload

    return standard_workload(4096)
