"""Benchmark harness configuration.

Every ``bench_figNN_*`` module regenerates one figure of the paper at
full scale, asserts its qualitative checks, and prints the regenerated
series (run with ``-s`` to see the tables).  The ``benchmark`` fixture
times one full regeneration (single round: the experiments are
deterministic, so repetition adds nothing).

``--bench-json PATH`` additionally persists every experiment's timing
(and its printed series rows) into ``PATH`` using the trajectory schema
of :mod:`repro.bench.trajectory`, scenario names prefixed
``experiment:`` -- so figure regenerations land in the same trend
report as the canonical ``repro bench`` scenarios.  Opt-in: without the
flag nothing is imported from ``repro.bench`` and nothing is written.
"""

from __future__ import annotations

import pytest

_BENCH_JSON_PATH = None


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="append experiment timings to PATH in the repro-bench-"
        "trajectory schema (see repro.bench.trajectory)",
    )


def pytest_configure(config):
    global _BENCH_JSON_PATH
    _BENCH_JSON_PATH = config.getoption("--bench-json", default=None)


def run_experiment(benchmark, module, quick: bool = False):
    """Time one full experiment run, assert and display its results."""
    result = benchmark.pedantic(
        module.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print("\n" + result.summary())
    if _BENCH_JSON_PATH:
        _persist(benchmark, result)
    assert result.all_passed, f"{result.name} failed: {result.failed_checks()}"
    return result


def _persist(benchmark, result):
    from repro.bench.trajectory import append_experiment

    stats = benchmark.stats.stats
    seconds = getattr(stats, "median", None)
    if seconds is None:
        seconds = stats.min
    rows = None
    if getattr(result, "rows", None):
        rows = [dict(r) if isinstance(r, dict) else list(r) for r in result.rows]
    append_experiment(
        _BENCH_JSON_PATH,
        name=result.name,
        seconds=float(seconds),
        rows=rows,
        checks_passed=bool(result.all_passed),
    )


@pytest.fixture(scope="session")
def paper_workload_16384k():
    """The paper's headline workload (16384 Kpixel), session-cached."""
    from repro.experiments.common import standard_workload

    return standard_workload(16384)


@pytest.fixture(scope="session")
def paper_workload_4096k():
    from repro.experiments.common import standard_workload

    return standard_workload(4096)
