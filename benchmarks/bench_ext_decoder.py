"""Full-scale extension study: parallel decoding (see the experiment
module's docstring)."""

from repro.experiments import ext_decoder as _mod

from conftest import run_experiment


def test_bench_ext_decoder(benchmark):
    run_experiment(benchmark, _mod)
