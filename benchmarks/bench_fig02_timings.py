"""Full-scale regeneration of the paper's fig02 (see the experiment
module's docstring for what the paper shows and which claims are
checked).  Run with `-s` to print the regenerated series."""

from repro.experiments import fig02_timings as _mod

from conftest import run_experiment


def test_bench_fig02_timings(benchmark):
    run_experiment(benchmark, _mod)
