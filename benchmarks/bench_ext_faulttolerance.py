"""Full-scale extension study: recovery overhead of supervised
execution under injected compute faults -- byte-identity against the
serial reference throughout (see the experiment module's docstring)."""

from repro.experiments import ext_faulttolerance as _mod

from conftest import run_experiment


def test_bench_ext_faulttolerance(benchmark):
    run_experiment(benchmark, _mod)
