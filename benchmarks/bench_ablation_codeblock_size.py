"""Ablation: code-block size vs tier-1 parallel efficiency and rate.

JPEG2000 fixes code-blocks at "no more than 64x64".  Smaller blocks give
the worker pool finer scheduling granularity (better balance) but cost
compression (more per-block model resets and header state) and more pool
dispatch overhead -- the 64x64 default is a compromise, visible here on
real encodes.
"""

import pytest

from repro.codec import CodecParams, encode_image
from repro.image import SyntheticSpec, synthetic_image
from repro.perf import (
    measure_pixel_stats,
    scaled_workload,
    simulate_encode,
    workload_from_encode_result,
)
from repro.smp import INTEL_SMP
from repro.wavelet.strategies import VerticalStrategy


def _schedule_imbalance(wl) -> float:
    """Pure scheduling balance of the staggered pool (no overhead tasks)."""
    from repro.smp import load_imbalance, staggered_round_robin
    from repro.perf.workmodel import DEFAULT_WORK_PARAMS, t1_block_task

    tasks = [
        t1_block_task(d, s, p, INTEL_SMP, DEFAULT_WORK_PARAMS, f"cb{i}")
        for i, (d, s, p) in enumerate(wl.block_work)
    ]
    return load_imbalance(
        staggered_round_robin(tasks, 4), lambda t: t.cycles(INTEL_SMP)
    )


def test_bench_codeblock_size(benchmark):
    img = synthetic_image(SyntheticSpec(256, 256, "mix", seed=9))

    def run():
        out = {}
        for cb in (16, 32, 64):
            res = encode_image(img, CodecParams(levels=4, base_step=1 / 64, cb_size=cb))
            # Compression effects from the real encode; parallel behaviour
            # at the paper's scale (a 256x256 image is all overhead).
            wl = scaled_workload(2048, 2048, measure_pixel_stats(res), cb_size=cb)
            t1 = simulate_encode(wl, INTEL_SMP, 1, VerticalStrategy.AGGREGATED)
            t4 = simulate_encode(wl, INTEL_SMP, 4, VerticalStrategy.AGGREGATED)
            speedup = (
                t1.stage_ms["tier-1 coding"] / t4.stage_ms["tier-1 coding"]
            )
            out[cb] = {
                "bytes": res.n_bytes,
                "blocks": len(res.blocks),
                "t1_speedup": speedup,
                "imbalance": _schedule_imbalance(wl),
            }
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\ncb   blocks  bytes    t1_speedup  imbalance")
    for cb, row in table.items():
        print(
            f"{cb:3d}  {row['blocks']:6d}  {row['bytes']:7d}  "
            f"{row['t1_speedup']:10.2f}  {row['imbalance']:.4f}"
        )

    # Compression: bigger blocks never compress worse (fewer model resets).
    assert table[64]["bytes"] <= table[16]["bytes"]
    # Granularity: smaller blocks balance at least as well...
    assert table[16]["imbalance"] <= table[64]["imbalance"] + 0.02
    # ...but pay per-block pool dispatch: parallel efficiency IMPROVES
    # with block size, and 16x16 blocks are dispatch-bound.  The 64x64
    # default wins on both compression and parallel speedup.
    assert table[16]["t1_speedup"] < table[32]["t1_speedup"] < table[64]["t1_speedup"]
    assert table[64]["t1_speedup"] > 2.5
