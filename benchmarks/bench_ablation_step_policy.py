"""Ablation: noise-equalizing quantizer steps vs a uniform step.

The codec scales each subband's quantizer step by the inverse square
root of its synthesis energy gain, so one quantized unit of error costs
the same image-domain MSE in every band (the standard's design).  This
ablation quantizes a real decomposition both ways at matched coefficient
entropy (a codec-independent rate proxy) and measures image-domain MSE:
the equalized policy should dominate, and the gap should be visible, not
marginal -- this is why the step table exists.
"""

import numpy as np
import pytest

from repro.image import SyntheticSpec, entropy_bits, psnr, synthetic_image
from repro.quant import DeadzoneQuantizer, dequantize, quantize
from repro.wavelet import Subbands, dwt2d, idwt2d, synthesis_energy_gain


def _quantize_all(sb, step_fn):
    """Quantize every band with per-band steps; returns bands + rate proxy."""
    total_bits = 0.0
    total_coeffs = 0
    rec_bands = {}
    for lev, orient, band in sb.iter_bands():
        step = step_fn(lev, orient)
        q = quantize(band, step)
        total_bits += entropy_bits(q) * q.size
        total_coeffs += q.size
        rec_bands[(lev, orient)] = dequantize(q, step)
    return rec_bands, total_bits / total_coeffs


def _reconstruct(sb, rec_bands):
    details = [
        {o: rec_bands[(lev, o)] for o in ("HL", "LH", "HH")}
        for lev in range(1, sb.levels + 1)
    ]
    rec_sb = Subbands(
        ll=rec_bands[(sb.levels, "LL")],
        details=details,
        shape=sb.shape,
        filter_name=sb.filter_name,
    )
    return idwt2d(rec_sb)


def test_bench_step_policy(benchmark):
    img = synthetic_image(SyntheticSpec(256, 256, "mix", seed=12)).astype(float) - 128
    sb = dwt2d(img, 4, "9/7")
    quant = DeadzoneQuantizer(0.75, "9/7")

    def run():
        eq_bands, eq_rate = _quantize_all(sb, quant.step_for)
        eq_psnr = psnr(img, _reconstruct(sb, eq_bands), peak=255.0)
        # Uniform policy: bisect the single step to match the equalized
        # policy's entropy-rate proxy.
        lo, hi = 0.01, 50.0
        for _ in range(30):
            mid = 0.5 * (lo + hi)
            _, rate = _quantize_all(sb, lambda l, o: mid)
            if rate > eq_rate:
                lo = mid
            else:
                hi = mid
        un_bands, un_rate = _quantize_all(sb, lambda l, o: hi)
        un_psnr = psnr(img, _reconstruct(sb, un_bands), peak=255.0)
        return eq_rate, eq_psnr, un_rate, un_psnr

    eq_rate, eq_psnr, un_rate, un_psnr = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nequalized steps: {eq_rate:.3f} bits/coeff -> {eq_psnr:.2f} dB\n"
        f"uniform step   : {un_rate:.3f} bits/coeff -> {un_psnr:.2f} dB\n"
        f"gain from noise equalization: {eq_psnr - un_psnr:+.2f} dB"
    )
    assert abs(un_rate - eq_rate) < 0.05  # matched rate comparison
    assert eq_psnr > un_psnr + 0.5  # equalization is a real win
