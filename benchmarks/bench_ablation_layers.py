"""Ablation: what do quality layers cost?

The scalable codestream ("transmitting each bit layer corresponds to a
certain distortion level") is not free: every extra layer adds packet
headers and splits code-block segments.  This ablation encodes the same
image to the same final rate with 1, 3 and 6 nested layers and compares
final-layer PSNR and total overhead: the embedded-stream feature should
cost a small, bounded amount.
"""

import pytest

from repro.codec import CodecParams, decode_image, encode_image
from repro.image import SyntheticSpec, psnr, synthetic_image

_FINAL_BPP = 1.0
_LAYERINGS = {
    1: (1.0,),
    3: (0.25, 0.5, 1.0),
    6: (0.0625, 0.125, 0.25, 0.5, 0.75, 1.0),
}


def test_bench_layer_overhead(benchmark):
    img = synthetic_image(SyntheticSpec(256, 256, "mix", seed=13))

    def run():
        out = {}
        for n, targets in _LAYERINGS.items():
            res = encode_image(
                img,
                CodecParams(levels=4, base_step=1 / 64, cb_size=32, target_bpp=targets),
            )
            rec = decode_image(res.data)
            out[n] = (res.rate_bpp(), psnr(img, rec))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nlayers  rate(bpp)  final PSNR(dB)")
    for n, (rate, db) in table.items():
        print(f"{n:6d}  {rate:9.3f}  {db:14.2f}")

    base_rate, base_psnr = table[1]
    for n, (rate, db) in table.items():
        # All configurations land near the final target...
        assert rate <= _FINAL_BPP * 1.15
        # ...and layering costs at most ~0.7 dB at the final rate.
        assert db >= base_psnr - 0.7
    # More layers never pack tighter than fewer at the same target.
    assert table[6][1] <= table[1][1] + 0.1
